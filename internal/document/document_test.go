package document_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const librarySrc = `<library>
  <shelf floor="1">
    <book><title>One</title><author>A</author></book>
    <book><title>Two</title><author>B</author><author>C</author></book>
  </shelf>
  <shelf floor="2">
    <book><title>Three</title><author>D</author></book>
  </shelf>
</library>`

// oracleQuery evaluates q over tree with the pointer-navigation engine and
// returns the sorted result paths.
func oracleQuery(t *testing.T, tree *xmltree.Node, q string) []string {
	t.Helper()
	res, err := xpath.NewEngine(tree, xpath.PointerNavigator{}).Query(q)
	if err != nil {
		t.Fatalf("oracle %q: %v", q, err)
	}
	return sortedPaths(res)
}

func sortedPaths(nodes []*xmltree.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Path()
	}
	sort.Strings(out)
	return out
}

func TestOpenAndQuery(t *testing.T) {
	d, err := document.OpenString(librarySrc, document.Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"/library/shelf/book/title",
		"//book//author",
		"//book[author]/title",
		"//shelf[@floor='2']/book/title",
		"//title/text()",
	}
	snap := d.Snapshot()
	for _, q := range queries {
		got, _, err := d.Query(q)
		if err != nil {
			t.Fatalf("Query(%q): %v", q, err)
		}
		want := oracleQuery(t, snap.Tree(), q)
		if gotP := sortedPaths(got); strings.Join(gotP, "|") != strings.Join(want, "|") {
			t.Errorf("Query(%q) = %v, want %v", q, gotP, want)
		}
	}
	st := d.Stats()
	if st.Epoch != 1 || st.Nodes == 0 || st.Areas == 0 || st.Names == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	d, err := document.OpenString(librarySrc, document.Options{
		Partition: coreSmallPartition(),
	})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Snapshot()
	beforeTitles, _, err := before.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}

	book := xmltree.NewElement("book")
	title := xmltree.NewElement("title")
	title.AppendChild(xmltree.NewText("Four"))
	book.AppendChild(title)
	st, err := d.Insert("//shelf[@floor='1']", 0, book)
	if err != nil {
		t.Fatal(err)
	}
	_ = st

	after := d.Snapshot()
	if after.Epoch() <= before.Epoch() {
		t.Fatalf("epoch did not advance: %d -> %d", before.Epoch(), after.Epoch())
	}
	// The pinned snapshot still answers from the pre-update document.
	again, _, err := before.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(beforeTitles) {
		t.Fatalf("pinned snapshot changed: %d titles, was %d", len(again), len(beforeTitles))
	}
	afterTitles, _, err := after.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(afterTitles) != len(beforeTitles)+1 {
		t.Fatalf("new snapshot has %d titles, want %d", len(afterTitles), len(beforeTitles)+1)
	}

	// Delete the inserted book again; a third epoch appears.
	if _, err := d.Delete("//shelf[@floor='1']", 0); err != nil {
		t.Fatal(err)
	}
	final, _, err := d.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(beforeTitles) {
		t.Fatalf("after delete: %d titles, want %d", len(final), len(beforeTitles))
	}
	if d.Snapshot().Epoch() != 3 {
		t.Fatalf("epoch = %d, want 3", d.Snapshot().Epoch())
	}
}

// TestWritePathErrors pins the addressing contract of Insert/Delete.
func TestWritePathErrors(t *testing.T) {
	d, err := document.OpenString(librarySrc, document.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Insert("//nosuch", 0, xmltree.NewElement("x")); err == nil {
		t.Error("Insert under missing path succeeded")
	}
	if _, err := d.Insert("//book[", 0, xmltree.NewElement("x")); err == nil {
		t.Error("Insert with bad path succeeded")
	}
	if _, err := d.Delete("//shelf", 99); err == nil {
		t.Error("Delete out of range succeeded")
	}
	if d.Snapshot().Epoch() != 1 {
		t.Errorf("failed writes published epochs: %d", d.Snapshot().Epoch())
	}
}

// TestIdentifierStabilityAcrossEpochs checks that an update relabels only
// the affected area: a node far from the update point keeps its identifier
// in the next epoch (the paper's §3.2 claim, surfaced through the facade).
func TestIdentifierStabilityAcrossEpochs(t *testing.T) {
	d, err := document.FromTree(xmltree.Recursive(2, 5), document.Options{
		Partition: coreSmallPartition(),
	})
	if err != nil {
		t.Fatal(err)
	}
	before := d.Snapshot()
	// Observe the first title; update a subtree that follows it, so the
	// observed node is outside the re-enumerated area.
	titles, _, err := before.Query("//title")
	if err != nil || len(titles) == 0 {
		t.Fatalf("titles: %v (%d)", err, len(titles))
	}
	firstPath := titles[0].Path()
	idBefore, ok := before.Numbering().RUID(titles[0])
	if !ok {
		t.Fatal("first title unnumbered")
	}

	if _, err := d.Insert("/book/section/section[2]", 0, xmltree.NewElement("inserted")); err != nil {
		t.Fatal(err)
	}
	after := d.Snapshot()
	var match *xmltree.Node
	after.Tree().Walk(func(x *xmltree.Node) bool {
		if x.Path() == firstPath {
			match = x
		}
		return true
	})
	if match == nil {
		t.Fatalf("node %s missing after update", firstPath)
	}
	idAfter, ok := after.Numbering().RUID(match)
	if !ok {
		t.Fatal("first title unnumbered after update")
	}
	if idBefore != idAfter {
		t.Errorf("identifier of %s changed across epochs: %v -> %v", firstPath, idBefore, idAfter)
	}
}

func coreSmallPartition() core.PartitionConfig {
	return core.PartitionConfig{MaxAreaNodes: 8, AdjustFanout: true}
}
