package document_test

import (
	"strings"
	"testing"

	"repro/internal/document"
	"repro/internal/obs"
	"repro/internal/xmltree"
)

// TestObservedDocument drives the full observability surface of the facade:
// epoch gauges after open, query metrics after queries, incremental
// publication counters with delta scope after an insert, and the EXPLAIN
// ANALYZE rendering.
func TestObservedDocument(t *testing.T) {
	reg := obs.NewRegistry()
	d, err := document.OpenString(librarySrc, document.Options{Observe: reg})
	if err != nil {
		t.Fatal(err)
	}
	if d.Registry() != reg {
		t.Fatal("Registry() did not return the configured registry")
	}

	if got := reg.Gauge("doc.epoch").Value(); got != 1 {
		t.Errorf("doc.epoch = %d after open", got)
	}
	if reg.Gauge("doc.nodes").Value() == 0 || reg.Gauge("doc.names").Value() == 0 {
		t.Errorf("epoch gauges empty: nodes=%d names=%d",
			reg.Gauge("doc.nodes").Value(), reg.Gauge("doc.names").Value())
	}
	if reg.Counter("doc.publish_full").Value() != 1 {
		t.Errorf("doc.publish_full = %d", reg.Counter("doc.publish_full").Value())
	}

	if _, _, err := d.Query("//book/title"); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("query.count").Value() == 0 {
		t.Error("query.count not recorded through the facade")
	}
	if reg.Histogram("query.query_ns").Count() == 0 {
		t.Error("query.query_ns not recorded")
	}

	// An insert publishes incrementally: the scope counters must show a
	// touched-name count and a larger shared-name count (structural
	// sharing is the common case in this document).
	book := xmltree.NewElement("book")
	title := xmltree.NewElement("title")
	title.AppendChild(xmltree.NewText("Four"))
	book.AppendChild(title)
	if _, err := d.Insert("//shelf[@floor='1']", 0, book); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("doc.publish_incremental").Value() != 1 {
		t.Fatalf("doc.publish_incremental = %d", reg.Counter("doc.publish_incremental").Value())
	}
	if reg.Gauge("doc.epoch").Value() != 2 {
		t.Errorf("doc.epoch = %d after insert", reg.Gauge("doc.epoch").Value())
	}
	touched := reg.Counter("index.delta_names_touched").Value()
	shared := reg.Counter("index.delta_names_shared").Value()
	if touched == 0 {
		t.Error("insert touched no names")
	}
	if shared == 0 {
		t.Error("insert shared no names: delta publication lost its sharing")
	}
	if reg.Histogram("doc.publish_ns").Count() != 2 {
		t.Errorf("doc.publish_ns count = %d", reg.Histogram("doc.publish_ns").Count())
	}
	if reg.Gauge("doc.epochs_live").Value() < 1 {
		t.Errorf("doc.epochs_live = %d", reg.Gauge("doc.epochs_live").Value())
	}

	out, err := d.ExplainAnalyze("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trace //book/title", "plan=", "resolve"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainAnalyze missing %q:\n%s", want, out)
		}
	}

	// The traced query path returns the same nodes as the plain one.
	plain, _, err := d.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace("//book/title")
	traced, _, err := d.Snapshot().QueryTraced("//book/title", tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain) {
		t.Fatalf("traced %d nodes, plain %d", len(traced), len(plain))
	}
	for i := range traced {
		if traced[i] != plain[i] {
			t.Fatalf("traced node %d differs", i)
		}
	}
}

// TestUnobservedDocumentUnchanged pins the default: without Observe, no
// registry exists and queries behave identically.
func TestUnobservedDocumentUnchanged(t *testing.T) {
	d, err := document.OpenString(librarySrc, document.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Registry() != nil {
		t.Fatal("unobserved document has a registry")
	}
	nodes, _, err := d.Query("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) == 0 {
		t.Fatal("query returned nothing")
	}
	// ExplainAnalyze works without a registry: tracing is per-query state.
	out, err := d.ExplainAnalyze("//book/title")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "plan=") {
		t.Errorf("ExplainAnalyze without registry: %q", out)
	}
}
