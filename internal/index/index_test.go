package index_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/prepost"
	"repro/internal/scheme"
	"repro/internal/uid"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

func buildSchemes(t *testing.T, doc *xmltree.Node) map[string]scheme.Scheme {
	t.Helper()
	rn, err := core.Build(doc, core.Options{Partition: core.PartitionConfig{MaxAreaNodes: 16, AdjustFanout: true}})
	if err != nil {
		t.Fatal(err)
	}
	un, err := uid.Build(doc, uid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pn, err := prepost.Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]scheme.Scheme{"ruid": rn, "uid": un, "prepost": pn}
}

// canon renders a pair list order-independently for comparison.
func canon(pairs []index.Pair) string {
	keys := make([]string, len(pairs))
	for i, p := range pairs {
		keys[i] = string(p.Ancestor.Key()) + "|" + string(p.Descendant.Key())
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}

// TestJoinStrategiesAgree: all three join strategies produce the same pair
// set, for every scheme, on several name combinations of a recursive
// document (where section//section self-joins are the hard case).
func TestJoinStrategiesAgree(t *testing.T) {
	doc := xmltree.Recursive(2, 6)
	for name, s := range buildSchemes(t, doc) {
		ix := index.Build(doc.DocumentElement(), s)
		cases := [][2]string{
			{"section", "title"},
			{"section", "para"},
			{"section", "section"},
			{"book", "title"},
			{"title", "para"}, // empty: titles have no para descendants
		}
		for _, c := range cases {
			ancs := ix.IDs(c[0])
			descs := ix.IDs(c[1])
			naive := index.NaiveJoin(s, ancs, descs)
			merge := index.MergeJoin(s, ancs, descs)
			if canon(naive) != canon(merge) {
				t.Fatalf("%s: merge join differs from naive on %v (%d vs %d pairs)",
					name, c, len(merge), len(naive))
			}
			if name != "prepost" {
				up := index.UpwardJoin(s, ancs, descs)
				if canon(naive) != canon(up) {
					t.Fatalf("%s: upward join differs from naive on %v (%d vs %d pairs)",
						name, c, len(up), len(naive))
				}
			}
		}
	}
}

// TestSemiJoin: the semi-join returns exactly the distinct descendants of
// the full join, in document order.
func TestSemiJoin(t *testing.T) {
	doc := xmltree.XMark(2, 5)
	s := buildSchemes(t, doc)["ruid"]
	ix := index.Build(doc.DocumentElement(), s)
	ancs := ix.IDs("item")
	descs := ix.IDs("text")
	full := index.UpwardJoin(s, ancs, descs)
	semi := index.UpwardSemiJoin(s, ancs, descs)
	want := map[string]bool{}
	for _, p := range full {
		want[string(p.Descendant.Key())] = true
	}
	if len(semi) != len(want) {
		t.Fatalf("semi join %d results, want %d distinct", len(semi), len(want))
	}
	for i := 1; i < len(semi); i++ {
		if s.CompareOrder(semi[i-1], semi[i]) >= 0 {
			t.Fatalf("semi join out of document order at %d", i)
		}
	}
}

// TestPathQueryMatchesXPath: the join pipeline agrees with the navigation
// engine on //n1//n2//…//nk queries.
func TestPathQueryMatchesXPath(t *testing.T) {
	docs := map[string]*xmltree.Node{
		"recursive": xmltree.Recursive(2, 6),
		"xmark":     xmltree.XMark(2, 6),
		"random": xmltree.Random(xmltree.RandomConfig{
			Nodes: 400, MaxFanout: 5, Seed: 31,
		}),
	}
	paths := map[string][][]string{
		"recursive": {
			{"book", "section", "title"},
			{"section", "section", "para"},
			{"section", "section", "section", "title"},
		},
		"xmark": {
			{"site", "regions", "item"},
			{"item", "description", "text"},
			{"open_auctions", "bidder", "increase"},
		},
		"random": {
			{"e1", "e2"}, {"e3", "e3"}, {"e0", "e5", "e7"},
		},
	}
	for dn, doc := range docs {
		rn, err := core.Build(doc, core.Options{Partition: core.PartitionConfig{MaxAreaNodes: 24}})
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(doc.DocumentElement(), rn)
		engine := xpath.NewEngine(doc, xpath.PointerNavigator{})
		for _, names := range paths[dn] {
			got := ix.PathQuery(names...)
			q := "//" + strings.Join(names, "//")
			want, err := engine.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s %s: join pipeline %d results, xpath %d", dn, q, len(got), len(want))
			}
			for i := range got {
				node, ok := rn.NodeOf(got[i])
				if !ok || node != want[i] {
					t.Fatalf("%s %s: result %d differs", dn, q, i)
				}
			}
		}
	}
}

// TestPathQueryChainOrder: the pipeline honours the vertical order of the
// chain — //a//b//c must not match when b is above a.
func TestPathQueryChainOrder(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><b><a><c/></a></b><a><b><c/></b></a></r>`)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := core.Build(doc, core.Options{Partition: core.PartitionConfig{MaxAreaNodes: 4}})
	if err != nil {
		t.Fatal(err)
	}
	ix := index.Build(doc.DocumentElement(), rn)
	got := ix.PathQuery("a", "b", "c")
	if len(got) != 1 {
		t.Fatalf("PathQuery(a,b,c) = %d results, want 1", len(got))
	}
	node, _ := rn.NodeOf(got[0])
	if node.Parent.Name != "b" || node.Parent.Parent.Name != "a" {
		t.Fatalf("wrong c matched: %s", node.Path())
	}
}

// TestNamesAndCounts covers the small accessors.
func TestNamesAndCounts(t *testing.T) {
	doc := xmltree.DBLP(50, 1)
	s := buildSchemes(t, doc)["ruid"]
	ix := index.Build(doc.DocumentElement(), s)
	if ix.Count("article") != 50 {
		t.Fatalf("Count(article) = %d", ix.Count("article"))
	}
	names := ix.Names()
	if !sort.StringsAreSorted(names) || len(names) < 4 {
		t.Fatalf("Names() = %v", names)
	}
	if ix.Scheme() != s {
		t.Fatalf("Scheme() mismatch")
	}
	if ids := ix.IDs("nonexistent"); len(ids) != 0 {
		t.Fatalf("IDs(nonexistent) = %v", ids)
	}
}

// TestJoinRandomized: random documents, random name pairs, all strategies
// agree with ground truth computed from the pointer tree.
func TestJoinRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		doc := xmltree.Random(xmltree.RandomConfig{
			Nodes: 250, MaxFanout: 5, Seed: int64(trial), DepthBias: 0.4,
		})
		rn, err := core.Build(doc, core.Options{Partition: core.PartitionConfig{MaxAreaNodes: 12}})
		if err != nil {
			t.Fatal(err)
		}
		ix := index.Build(doc.DocumentElement(), rn)
		names := ix.Names()
		a := names[rng.Intn(len(names))]
		d := names[rng.Intn(len(names))]
		ancs := ix.IDs(a)
		descs := ix.IDs(d)

		// Ground truth from pointers.
		var want []index.Pair
		for _, dn := range doc.DocumentElement().Elements() {
			if dn.Name != d {
				continue
			}
			did, _ := rn.IDOf(dn)
			for p := dn.Parent; p != nil && p.Kind == xmltree.Element; p = p.Parent {
				if p.Name == a {
					aid, _ := rn.IDOf(p)
					want = append(want, index.Pair{Ancestor: aid, Descendant: did})
				}
			}
		}
		for sname, join := range map[string]func() []index.Pair{
			"upward": func() []index.Pair { return index.UpwardJoin(rn, ancs, descs) },
			"merge":  func() []index.Pair { return index.MergeJoin(rn, ancs, descs) },
			"naive":  func() []index.Pair { return index.NaiveJoin(rn, ancs, descs) },
		} {
			if got := join(); canon(got) != canon(want) {
				t.Fatalf("trial %d: %s join on (%s, %s): %d pairs, want %d",
					trial, sname, a, d, len(got), len(want))
			}
		}
	}
}

// TestParentSemiJoin checks the child-step join against ground truth.
func TestParentSemiJoin(t *testing.T) {
	doc := xmltree.Recursive(2, 5)
	s := buildSchemes(t, doc)["ruid"]
	ix := index.Build(doc.DocumentElement(), s)
	got := index.ParentSemiJoin(s, ix.IDs("section"), ix.IDs("title"))
	want := 0
	for _, x := range doc.DocumentElement().Elements() {
		if x.Name == "title" && x.Parent.Name == "section" {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("ParentSemiJoin = %d results, want %d", len(got), want)
	}
	for _, id := range got {
		node, _ := s.NodeOf(id)
		if node.Parent.Name != "section" {
			t.Fatalf("result %s has parent %s", node.Path(), node.Parent.Name)
		}
	}
}

// TestReverseSemiJoins checks AncestorSemiJoin and ChildSemiJoin against
// pointer ground truth.
func TestReverseSemiJoins(t *testing.T) {
	doc := xmltree.Recursive(2, 5)
	s := buildSchemes(t, doc)["ruid"]
	ix := index.Build(doc.DocumentElement(), s)

	gotA := index.AncestorSemiJoin(s, ix.IDs("section"), ix.IDs("title"))
	wantA := 0
	for _, x := range doc.DocumentElement().Elements() {
		if x.Name != "section" {
			continue
		}
		found := false
		for _, d := range xmltree.Descendants(x) {
			if d.Name == "title" {
				found = true
				break
			}
		}
		if found {
			wantA++
		}
	}
	if len(gotA) != wantA {
		t.Fatalf("AncestorSemiJoin = %d, want %d", len(gotA), wantA)
	}
	for i := 1; i < len(gotA); i++ {
		if s.CompareOrder(gotA[i-1], gotA[i]) >= 0 {
			t.Fatalf("AncestorSemiJoin out of order")
		}
	}

	gotC := index.ChildSemiJoin(s, ix.IDs("section"), ix.IDs("para"))
	wantC := 0
	for _, x := range doc.DocumentElement().Elements() {
		if x.Name != "section" {
			continue
		}
		for _, c := range x.Children {
			if c.Name == "para" {
				wantC++
				break
			}
		}
	}
	if len(gotC) != wantC {
		t.Fatalf("ChildSemiJoin = %d, want %d", len(gotC), wantC)
	}
	// Empty inputs.
	if got := index.AncestorSemiJoin(s, nil, ix.IDs("title")); len(got) != 0 {
		t.Fatalf("AncestorSemiJoin(nil, ...) = %d", len(got))
	}
	if got := ix.PathQuery(); got != nil {
		t.Fatalf("PathQuery() = %v", got)
	}
	if got := ix.PathQuery("nonexistent", "title"); got != nil {
		t.Fatalf("PathQuery(nonexistent, ...) = %v", got)
	}
}
