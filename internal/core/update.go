package core

import (
	"fmt"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// Structural update (§3.2 of the paper). The ruid confines the scope of
// identifier changes to the single UID-local area where the update occurs:
//
//   - if the area has space, only the right siblings of the update point
//     and their *within-area* descendants are relabeled; descendant areas
//     keep their interiors untouched because the frame is unchanged (their
//     roots may get a new local slot in this area, which changes one K row
//     and one identifier per such root, not their contents);
//   - if the update overflows the area's local fan-out kᵢ, only that area
//     is re-enumerated with a larger kᵢ, instead of the whole document as
//     with the original UID.
//
// Both effects are reproduced literally here: every update re-derives the
// affected area's enumeration and reports exactly how many pre-existing
// identifiers changed.

// InsertChild implements scheme.Updatable: newChild (possibly a whole
// subtree) becomes the pos-th child of parent. The subtree joins parent's
// UID-local area; use Repartition to re-balance areas after bulk insertion.
func (n *Numbering) InsertChild(parent *xmltree.Node, pos int, newChild *xmltree.Node) (scheme.UpdateStats, error) {
	pid, ok := n.ids[parent]
	if !ok {
		return scheme.UpdateStats{}, fmt.Errorf("core: insert under unnumbered node %s", parent.Path())
	}
	if pos < 0 || pos > len(parent.Children) {
		return scheme.UpdateStats{}, fmt.Errorf("core: insert position %d out of range", pos)
	}
	parent.InsertChildAt(pos, newChild)

	ga, _ := n.childContext(pid)
	a := n.areas[ga]
	need := n.areaFanout(a)
	var st scheme.UpdateStats
	newK := a.fanout
	if need > newK {
		// No space: enlarge the enumerating tree of this area only
		// ("the enlargement changes only the identifiers of the nodes in
		// this area").
		newK = need
		st.AreaRebuilds = 1
	}
	relabeled, err := n.reEnumerateArea(a, newK)
	if err != nil {
		return n.healOverflow(err, st)
	}
	st.Relabeled = relabeled
	return st, nil
}

// healOverflow recovers from a local-index overflow during an update: the
// node where the overflow occurred is promoted to an area root and the
// numbering is rebuilt. This is the update-time analogue of the Build-time
// promotion loop; it is rare (it needs a wide-and-deep area) and reported
// conservatively as a full rebuild.
func (n *Numbering) healOverflow(err error, st scheme.UpdateStats) (scheme.UpdateStats, error) {
	var ov *overflowError
	if !errorsAs(err, &ov) || ov.node == nil || n.areaRoots[ov.node] {
		return st, err
	}
	n.areaRoots[ov.node] = true
	for {
		rerr := n.renumberAll()
		if rerr == nil {
			break
		}
		if !errorsAs(rerr, &ov) || ov.node == nil || n.areaRoots[ov.node] {
			return st, rerr
		}
		n.areaRoots[ov.node] = true
	}
	st.FullRebuild = true
	st.Relabeled = n.Size()
	return st, nil
}

// DeleteChild implements scheme.Updatable: cascading deletion of the pos-th
// child of parent (§3.2: "any node deletion in an XML tree is cascading").
// Areas rooted inside the deleted subtree disappear with it; the frame
// positions of surviving areas are untouched (the κ-ary arithmetic
// tolerates the gaps), so no identifier outside the update area changes.
func (n *Numbering) DeleteChild(parent *xmltree.Node, pos int) (scheme.UpdateStats, error) {
	pid, ok := n.ids[parent]
	if !ok {
		return scheme.UpdateStats{}, fmt.Errorf("core: delete under unnumbered node %s", parent.Path())
	}
	if pos < 0 || pos >= len(parent.Children) {
		return scheme.UpdateStats{}, fmt.Errorf("core: delete position %d out of range", pos)
	}
	removed := parent.RemoveChild(pos)
	removed.Walk(func(x *xmltree.Node) bool {
		n.dropNode(x)
		for _, at := range x.Attrs {
			n.dropNode(at)
		}
		return true
	})

	ga, _ := n.childContext(pid)
	a := n.areas[ga]
	relabeled, err := n.reEnumerateArea(a, a.fanout)
	if err != nil {
		return n.healOverflow(err, scheme.UpdateStats{})
	}
	return scheme.UpdateStats{Relabeled: relabeled}, nil
}

// dropNode removes one deleted node from all numbering state, including the
// whole area it roots, if any.
func (n *Numbering) dropNode(x *xmltree.Node) {
	id, ok := n.ids[x]
	if !ok {
		return
	}
	delete(n.ids, x)
	delete(n.nodes, id)
	if n.areaRoots[x] && x != n.root {
		delete(n.areaRoots, x)
		delete(n.areas, id.Global)
	}
}

// areaFanout scans the current members of area a (stopping at boundary
// leaves) and returns the maximal structural fan-out — the kᵢ the area
// needs.
func (n *Numbering) areaFanout(a *area) int64 {
	var need int64 = 1
	var scan func(x *xmltree.Node)
	scan = func(x *xmltree.Node) {
		if x != a.root && n.areaRoots[x] {
			return
		}
		kids := x.StructuralChildren(n.opts.WithAttrs)
		if int64(len(kids)) > need {
			need = int64(len(kids))
		}
		for _, c := range kids {
			scan(c)
		}
	}
	scan(a.root)
	return need
}

// reEnumerateArea re-derives the local enumeration of one area with fan-out
// k, updating node identifiers, the K row entries of child areas whose
// roots moved slots, and the area's slot index. It returns the number of
// pre-existing nodes whose identifier changed. Nodes enumerated for the
// first time (fresh insertions) are not counted.
func (n *Numbering) reEnumerateArea(a *area, k int64) (int, error) {
	a.fanout = k
	a.locals = make(map[int64]*xmltree.Node, len(a.locals))
	a.rootByLocal = make(map[int64]int64, len(a.rootByLocal))
	a.sortedDirty = true
	relabeled := 0

	var assign func(x *xmltree.Node, slot int64) error
	assign = func(x *xmltree.Node, slot int64) error {
		a.locals[slot] = x
		if x != a.root && n.areaRoots[x] {
			// Boundary leaf: the root of a lower area. Its own area keeps
			// its global index and interior; only its slot here (and hence
			// its K row and full identifier) may change.
			old := n.ids[x]
			a.rootByLocal[slot] = old.Global
			child := n.areas[old.Global]
			if child.rootLocal != slot {
				child.rootLocal = slot
				n.setID(x, ID{Global: old.Global, Local: slot, Root: true})
				relabeled++
			}
			return nil
		}
		if x != a.root {
			newID := ID{Global: a.global, Local: slot, Root: false}
			old, existed := n.ids[x]
			if !existed {
				n.setID(x, newID)
			} else if old != newID {
				n.setID(x, newID)
				relabeled++
			}
		}
		for j, c := range x.StructuralChildren(n.opts.WithAttrs) {
			cl, ok := childIndex(slot, a.fanout, j)
			if !ok || cl > n.localLimit {
				return &overflowError{area: a.global, node: x}
			}
			if err := assign(c, cl); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(a.root, 1); err != nil {
		return relabeled, err
	}
	return relabeled, nil
}

// Repartition rebuilds the numbering from scratch with a fresh automatic
// partition, re-balancing areas after bulk structural change. It returns
// the number of nodes whose identifier changed.
func (n *Numbering) Repartition(cfg PartitionConfig) (int, error) {
	old := make(map[*xmltree.Node]ID, len(n.ids))
	for x, id := range n.ids {
		old[x] = id
	}
	n.areaRoots = SelectAreaRoots(n.root, cfg, n.opts.WithAttrs)
	n.opts.Partition = cfg
	if err := n.renumberAll(); err != nil {
		return 0, err
	}
	changed := 0
	for x, oldID := range old {
		if newID, ok := n.ids[x]; ok && newID != oldID {
			changed++
		}
	}
	return changed, nil
}
