// Package workload is the experiment harness: it defines the standard
// document suite, the query workloads, and one driver per experiment of
// EXPERIMENTS.md (E1–E10), each producing a printable table. The drivers
// are shared by cmd/ruidbench (human-readable regeneration of every
// table/figure) and bench_test.go (testing.B measurements of the hot
// loops).
package workload

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"
)

// Table is one experiment's result table.
type Table struct {
	ID     string // experiment id, e.g. "E6"
	Title  string
	Note   string // provenance: which paper artifact this regenerates
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.String()
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "   (%s)\n", t.Note); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	underline := make([]string, len(t.Header))
	for i, h := range t.Header {
		underline[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// timeOp measures the mean latency of fn over enough iterations to be
// stable (at least minIters, at least ~2ms of total work).
func timeOp(minIters int, fn func()) time.Duration {
	iters := 0
	start := time.Now()
	for time.Since(start) < 2*time.Millisecond || iters < minIters {
		fn()
		iters++
	}
	return time.Since(start) / time.Duration(iters)
}

// fmtSscan is a tiny indirection over fmt.Sscan so tests can parse cells
// without importing fmt themselves.
func fmtSscan(s string, args ...any) (int, error) { return fmt.Sscan(s, args...) }
