package prepost_test

import (
	"testing"

	"repro/internal/prepost"
	"repro/internal/scheme"
	"repro/internal/scheme/schemetest"
	"repro/internal/xmltree"
)

func TestConformanceDietz(t *testing.T) {
	schemetest.Run(t, func(t *testing.T, doc *xmltree.Node) scheme.Scheme {
		n, err := prepost.Build(doc)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return n
	})
}

func TestConformanceLiMoon(t *testing.T) {
	for _, slack := range []int64{1, 3} {
		slack := slack
		t.Run(map[int64]string{1: "tight", 3: "slack3"}[slack], func(t *testing.T) {
			schemetest.Run(t, func(t *testing.T, doc *xmltree.Node) scheme.Scheme {
				n, err := prepost.BuildLiMoon(doc, slack)
				if err != nil {
					t.Fatalf("BuildLiMoon: %v", err)
				}
				return n
			})
		})
	}
}

// TestDietzLabels pins pre/post labels on a small tree.
func TestDietzLabels(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b><d/><e/></b><c/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := prepost.Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.DocumentElement()
	want := map[string][2]int64{
		"a": {0, 4}, "b": {1, 2}, "d": {2, 0}, "e": {3, 1}, "c": {4, 3},
	}
	root.Walk(func(d *xmltree.Node) bool {
		w := want[d.Name]
		id, _ := n.IDOf(d)
		pid := id.(prepost.ID)
		if pid.Pre != w[0] || pid.Post != w[1] {
			t.Errorf("node %s: (pre, post) = (%d, %d), want (%d, %d)",
				d.Name, pid.Pre, pid.Post, w[0], w[1])
		}
		return true
	})
}

// TestDescendantRange checks the preorder containment interval.
func TestDescendantRange(t *testing.T) {
	doc := xmltree.Balanced(3, 3)
	n, err := prepost.Build(doc)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.DocumentElement()
	for _, node := range root.Nodes() {
		id, _ := n.IDOf(node)
		got := n.Descendants(id)
		want := xmltree.Descendants(node)
		if len(got) != len(want) {
			t.Fatalf("node %s: %d descendants via range, want %d",
				node.Path(), len(got), len(want))
		}
		for i := range got {
			wid, _ := n.IDOf(want[i])
			if got[i] != wid {
				t.Fatalf("node %s: descendant %d = %v, want %v",
					node.Path(), i, got[i], wid)
			}
		}
	}
}

// TestLiMoonSlackContainment checks the containment invariant with slack:
// every proper descendant's order falls inside the ancestor's interval and
// no non-descendant's does.
func TestLiMoonSlackContainment(t *testing.T) {
	doc := xmltree.Random(xmltree.RandomConfig{Nodes: 300, MaxFanout: 5, Seed: 3})
	n, err := prepost.BuildLiMoon(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	nodes := doc.DocumentElement().Nodes()
	for _, a := range nodes {
		for _, d := range nodes {
			ida, _ := n.IDOf(a)
			idd, _ := n.IDOf(d)
			want := xmltree.IsAncestor(a, d)
			if got := n.IsAncestor(ida, idd); got != want {
				t.Fatalf("IsAncestor(%s, %s) = %v, want %v", ida, idd, got, want)
			}
		}
	}
}

// TestLiMoonGapInsertion checks the extended-preorder update behaviour:
// with slack, single-node insertions land in gaps without relabeling;
// when the gap is exhausted the whole document is relabeled at once.
func TestLiMoonGapInsertion(t *testing.T) {
	doc, err := xmltree.ParseString(`<a><b><c/><d/></b><e/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := prepost.BuildLiMoon(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.DocumentElement()
	b := root.Children[0]
	free := 0
	rebuilds := 0
	for i := 0; i < 12; i++ {
		st, err := n.InsertChild(b, 1, xmltree.NewElement("x"))
		if err != nil {
			t.Fatal(err)
		}
		if st.FullRebuild {
			rebuilds++
		} else {
			if st.Relabeled != 0 {
				t.Fatalf("gap insertion relabeled %d nodes", st.Relabeled)
			}
			free++
		}
		// The scheme must stay correct after every operation.
		nodes := root.Nodes()
		for _, x := range nodes {
			for _, y := range nodes {
				ix, _ := n.IDOf(x)
				iy, _ := n.IDOf(y)
				if got, want := n.IsAncestor(ix, iy), xmltree.IsAncestor(x, y); got != want {
					t.Fatalf("op %d: IsAncestor(%s,%s)=%v want %v", i, ix, iy, got, want)
				}
				if got, want := n.CompareOrder(ix, iy), xmltree.CompareOrder(x, y); got != want {
					t.Fatalf("op %d: CompareOrder(%s,%s)=%d want %d", i, ix, iy, got, want)
				}
			}
		}
	}
	if free == 0 {
		t.Fatalf("slack 4 should absorb at least one insertion")
	}
	if rebuilds == 0 {
		t.Fatalf("12 insertions at one spot should exhaust the slack at least once")
	}
}

// TestLiMoonDeletion checks that deletion drops labels without relabeling.
func TestLiMoonDeletion(t *testing.T) {
	doc := xmltree.Balanced(3, 3)
	n, err := prepost.BuildLiMoon(doc, 2)
	if err != nil {
		t.Fatal(err)
	}
	root := doc.DocumentElement()
	victim := root.Children[1]
	removed := victim.Nodes()
	st, err := n.DeleteChild(root, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Relabeled != 0 || st.FullRebuild {
		t.Fatalf("deletion must be free: %+v", st)
	}
	for _, x := range removed {
		if _, ok := n.IDOf(x); ok {
			t.Fatalf("deleted node %s still labeled", x.Path())
		}
	}
	for _, x := range root.Nodes() {
		if _, ok := n.IDOf(x); !ok {
			t.Fatalf("surviving node %s lost its label", x.Path())
		}
	}
}

// TestUpdateSoakShared runs the shared randomized update soak against the
// Li–Moon extended preorder.
func TestUpdateSoakShared(t *testing.T) {
	schemetest.RunUpdateSoak(t, func(t *testing.T, doc *xmltree.Node) scheme.Updatable {
		n, err := prepost.BuildLiMoon(doc, 4)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}, 40, 9)
}
