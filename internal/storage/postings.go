package storage

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/index"
)

// Persistence of the block-compressed postings (index.PostingList). The
// delta bytes and the skip table are written verbatim — the on-disk form is
// the resident form, so a saved index shrinks on disk exactly as much as it
// does in memory, and loading is a validation pass, not a re-encode.
//
// Layout (all integers unsigned varints unless noted):
//
//	magic "ruidpx01"                      8 bytes
//	name count
//	per name, in sorted name order:
//	  name length, name bytes
//	  posting count
//	  block count
//	  per block:
//	    First key                        17 bytes (core.ID.Key)
//	    Last key                         17 bytes
//	    MinGlobal, MaxGlobal             varints
//	    byte length of the delta run     varint (Off is the running sum)
//	    N                                varint
//	  data length, delta data bytes verbatim
//
// Sorted name order makes the encoding deterministic: the same index always
// serializes to the same bytes (the golden test pins this).

// postingsMagic identifies and versions the postings snapshot format.
const postingsMagic = "ruidpx01"

// EncodePostings serializes every posting list of a ruid-backed index.
func EncodePostings(ix *index.NameIndex) ([]byte, error) {
	if ix.RUID() == nil {
		return nil, fmt.Errorf("storage: postings snapshot requires a ruid-backed index")
	}
	names := ix.Names()
	sort.Strings(names)
	out := append(make([]byte, 0, 1024), postingsMagic...)
	out = binary.AppendUvarint(out, uint64(len(names)))
	for _, name := range names {
		pl := ix.Postings(name).List()
		if pl == nil {
			return nil, fmt.Errorf("storage: name %q has no block posting list", name)
		}
		out = binary.AppendUvarint(out, uint64(len(name)))
		out = append(out, name...)
		out = binary.AppendUvarint(out, uint64(pl.Len()))
		skips := pl.Skips()
		out = binary.AppendUvarint(out, uint64(len(skips)))
		for _, sk := range skips {
			out = append(out, sk.First.Key()...)
			out = append(out, sk.Last.Key()...)
			out = binary.AppendUvarint(out, uint64(sk.MinGlobal))
			out = binary.AppendUvarint(out, uint64(sk.MaxGlobal))
			out = binary.AppendUvarint(out, uint64(sk.End-sk.Off))
			out = binary.AppendUvarint(out, uint64(sk.N))
		}
		// DataBytes faults a paged list's delta region back in, so a
		// paged-open document saves byte-identically to a resident one.
		data, err := pl.DataBytes()
		if err != nil {
			return nil, fmt.Errorf("storage: postings for %q: %w", name, err)
		}
		out = binary.AppendUvarint(out, uint64(len(data)))
		out = append(out, data...)
	}
	return out, nil
}

// DecodePostings parses an EncodePostings snapshot back into resident
// posting lists. Every list is structurally revalidated
// (index.PostingListFromParts): the skip table must tile the data, every
// block must decode, and the skip entries must agree with the decoded
// contents. Corrupt or truncated input returns an error, never a panic.
func DecodePostings(b []byte) (map[string]*index.PostingList, error) {
	lists := make(map[string]*index.PostingList)
	err := walkPostings(b, func(name string, count int, skips []index.Skip, data []byte) error {
		dcopy := make([]byte, len(data))
		copy(dcopy, data)
		pl, err := index.PostingListFromParts(dcopy, skips, count)
		if err != nil {
			return fmt.Errorf("storage: %q: %w", name, err)
		}
		lists[name] = pl
		return nil
	})
	if err != nil {
		return nil, err
	}
	return lists, nil
}

// walkPostings parses an EncodePostings snapshot section by section,
// invoking fn once per name with the parsed skip table and the section's
// delta data bytes (aliasing b; fn copies what it retains). The resident
// and paged load paths share it, so both apply identical header
// validation.
func walkPostings(b []byte, fn func(name string, count int, skips []index.Skip, data []byte) error) error {
	if len(b) < len(postingsMagic) || string(b[:len(postingsMagic)]) != postingsMagic {
		return fmt.Errorf("storage: bad postings magic")
	}
	b = b[len(postingsMagic):]
	uvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(b)
		if n <= 0 {
			return 0, fmt.Errorf("storage: truncated postings snapshot at %s", what)
		}
		b = b[n:]
		return v, nil
	}
	key := func(what string) (core.ID, error) {
		if len(b) < core.KeyBytes {
			return core.ID{}, fmt.Errorf("storage: truncated postings snapshot at %s", what)
		}
		id, ok := core.DecodeKey(b[:core.KeyBytes])
		if !ok {
			return core.ID{}, fmt.Errorf("storage: malformed %s key", what)
		}
		b = b[core.KeyBytes:]
		return id, nil
	}
	nNames, err := uvarint("name count")
	if err != nil {
		return err
	}
	seen := make(map[string]bool, nNames)
	for i := uint64(0); i < nNames; i++ {
		nameLen, err := uvarint("name length")
		if err != nil {
			return err
		}
		if uint64(len(b)) < nameLen {
			return fmt.Errorf("storage: truncated postings snapshot at name")
		}
		name := string(b[:nameLen])
		b = b[nameLen:]
		if seen[name] {
			return fmt.Errorf("storage: duplicate postings for %q", name)
		}
		seen[name] = true
		count, err := uvarint("posting count")
		if err != nil {
			return err
		}
		nBlocks, err := uvarint("block count")
		if err != nil {
			return err
		}
		if nBlocks > count {
			return fmt.Errorf("storage: %q: %d blocks for %d postings", name, nBlocks, count)
		}
		skips := make([]index.Skip, nBlocks)
		off := uint32(0)
		for j := range skips {
			sk := &skips[j]
			if sk.First, err = key("block first"); err != nil {
				return err
			}
			if sk.Last, err = key("block last"); err != nil {
				return err
			}
			minG, err := uvarint("min global")
			if err != nil {
				return err
			}
			maxG, err := uvarint("max global")
			if err != nil {
				return err
			}
			runLen, err := uvarint("block byte length")
			if err != nil {
				return err
			}
			n, err := uvarint("block entry count")
			if err != nil {
				return err
			}
			if minG > uint64(1)<<62 || maxG > uint64(1)<<62 || runLen > uint64(1)<<31 || n > index.BlockSize {
				return fmt.Errorf("storage: %q block %d header out of range", name, j)
			}
			sk.MinGlobal, sk.MaxGlobal = int64(minG), int64(maxG)
			sk.Off, sk.End = off, off+uint32(runLen)
			sk.N = uint16(n)
			off = sk.End
		}
		dataLen, err := uvarint("data length")
		if err != nil {
			return err
		}
		if uint64(len(b)) < dataLen {
			return fmt.Errorf("storage: truncated postings data for %q", name)
		}
		data := b[:dataLen]
		b = b[dataLen:]
		if err := fn(name, int(count), skips, data); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("storage: %d trailing bytes after postings snapshot", len(b))
	}
	return nil
}

// SavePostings writes the index's postings snapshot to w.
func SavePostings(w io.Writer, ix *index.NameIndex) error {
	b, err := EncodePostings(ix)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// LoadPostings reads a postings snapshot from r and assembles a ruid-backed
// index over rn. Beyond the structural checks of DecodePostings, the
// assembly verifies every list is in strict document order under rn
// (index.FromPostingLists) — a snapshot from a different document fails
// here instead of producing wrong query results.
func LoadPostings(r io.Reader, rn *core.Numbering) (*index.NameIndex, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lists, err := DecodePostings(b)
	if err != nil {
		return nil, err
	}
	return index.FromPostingLists(rn, lists)
}

// PostingsBlobPrefix namespaces posting-list blobs inside a BlockStore, so
// they coexist with any other blobs on the same pager.
const PostingsBlobPrefix = "px:"

// LoadPostingsPaged reads a postings snapshot from r and assembles a
// ruid-backed index whose block bytes live in bs pages instead of memory:
// each name's delta region is stored as one blob and its posting list is
// the paged form (index.PagedPostingList), so only the skip tables stay
// resident and queries fault in exactly the blocks their skip tables admit.
// Header and skip-table structure are validated here; block contents are
// revalidated on every fault (the lazy equivalent of LoadPostings' full
// pass), so a torn page surfaces as an error at read time, not as wrong
// results.
func LoadPostingsPaged(r io.Reader, rn *core.Numbering, bs *BlockStore) (*index.NameIndex, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lists := make(map[string]*index.PostingList)
	err = walkPostings(b, func(name string, count int, skips []index.Skip, data []byte) error {
		blob := PostingsBlobPrefix + name
		if err := bs.PutBlob(blob, data); err != nil {
			return err
		}
		pl, err := index.PagedPostingList(skips, count, len(data), bs.Source(blob))
		if err != nil {
			return fmt.Errorf("storage: %q: %w", name, err)
		}
		lists[name] = pl
		return nil
	})
	if err != nil {
		return nil, err
	}
	return index.FromPostingLists(rn, lists)
}
