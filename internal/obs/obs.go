// Package obs is the runtime observability layer: a low-overhead metric
// registry (atomic counters, gauges, bounded power-of-two histograms), a
// per-query execution Trace feeding the EXPLAIN ANALYZE renderer, and an
// optional expvar+pprof HTTP endpoint (serve.go).
//
// Two properties drive the design:
//
//   - Allocation-free hot paths. Components resolve metric pointers once at
//     construction and hold them; recording is one atomic add. Every metric
//     and trace method is nil-safe — a nil *Counter, *Histogram, *Trace or
//     *Span no-ops — so "observation off" costs a single nil check and the
//     instrumented code needs no branches of its own.
//   - Counters are atomics, not mutex-guarded maps. The identifier kernels
//     record from concurrent shard workers; a shared mutex would serialize
//     exactly the code the executor exists to parallelize, while an
//     uncontended atomic add costs a few nanoseconds and scales. The
//     registry's map is touched only at resolve time (registration), never
//     per observation.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready;
// all methods are nil-safe no-ops so disabled instrumentation costs one
// branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The zero value is ready; all
// methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the fixed bucket count of every Histogram. Bucket b holds
// the values of bit length b — [2^(b-1), 2^b) — with bucket 0 holding zero
// and the last bucket absorbing everything of bit length ≥ HistBuckets-1,
// so the histogram is bounded whatever is observed. 48 buckets cover both
// latencies (2^47 ns ≈ 39 hours) and size classes.
const HistBuckets = 48

// Histogram is a bounded power-of-two histogram: Observe is one atomic add
// into a fixed bucket array, so concurrent observation never allocates and
// never takes a lock. Quantiles are therefore approximate (upper bound of
// the holding bucket) — precise enough to find where time goes, cheap
// enough to leave on in production.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// histBucket returns the bucket index for v.
func histBucket(v uint64) int {
	b := bits.Len64(v)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(uint64(v))].Add(1)
	h.sum.Add(uint64(v))
}

// Count returns the number of observations (0 on nil). Concurrent with
// Observe the result is a consistent-enough snapshot, not an instant.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of every observed value (0 on nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// largest value of the bucket the quantile falls in. With no observations
// it returns 0.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b := 0; b < HistBuckets; b++ {
		seen += h.counts[b].Load()
		if seen > rank {
			return bucketUpper(b)
		}
	}
	return bucketUpper(HistBuckets - 1)
}

// bucketUpper is the largest value bucket b holds (the last bucket is
// unbounded and reports its lower bound instead).
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	if b >= HistBuckets-1 {
		return 1 << (HistBuckets - 2) // lower bound of the overflow bucket
	}
	return 1<<uint(b) - 1
}

// HistogramSummary is one histogram rendered for snapshots.
type HistogramSummary struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
}

// Summary returns the snapshot form (zero on nil).
func (h *Histogram) Summary() HistogramSummary {
	if h == nil {
		return HistogramSummary{}
	}
	return HistogramSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// Registry is a named collection of metrics. Get-or-create resolution
// (Counter, Gauge, Histogram, RegisterFunc) takes a mutex and is meant for
// construction time; the returned pointers are then recorded through
// lock-free. A nil *Registry resolves every metric to nil — the no-op
// registry — so "observation off" is the nil pointer, not a parallel
// implementation.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use (nil on a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use (nil on a
// nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a derived gauge read at snapshot time — process-
// wide statistics (pool hit rates, runtime numbers) that are maintained
// elsewhere. The first registration of a name wins; a nil registry or nil
// f is a no-op.
func (r *Registry) RegisterFunc(name string, f func() int64) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[name]; !ok {
		r.funcs[name] = f
	}
}

// Snapshot returns every metric's current value keyed by name, suitable for
// JSON/expvar export. Histograms appear as HistogramSummary. A nil registry
// returns an empty map.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, f := range r.funcs {
		out[name] = f()
	}
	for name, h := range r.hists {
		out[name] = h.Summary()
	}
	return out
}

// WriteText renders every metric as one sorted "name value" line — the
// xq -stats dump. Histograms render count, sum and quantile bounds.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	lines := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+len(r.hists))
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, g.Value()))
	}
	for name, f := range r.funcs {
		lines = append(lines, fmt.Sprintf("%s %d", name, f()))
	}
	for name, h := range r.hists {
		s := h.Summary()
		lines = append(lines, fmt.Sprintf("%s count=%d sum=%d p50≤%d p90≤%d p99≤%d",
			name, s.Count, s.Sum, s.P50, s.P90, s.P99))
	}
	r.mu.Unlock()
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}
