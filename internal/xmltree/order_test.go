package xmltree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIsAncestorAndLCA(t *testing.T) {
	doc := mustParse(t, `<a><b><c/><d/></b><e><f/></e></a>`)
	a := doc.DocumentElement()
	b, e := a.Children[0], a.Children[1]
	c, d := b.Children[0], b.Children[1]
	f := e.Children[0]

	if !IsAncestor(a, c) || !IsAncestor(b, c) || IsAncestor(c, a) || IsAncestor(c, c) {
		t.Fatalf("IsAncestor wrong")
	}
	if LowestCommonAncestor(c, d) != b {
		t.Fatalf("LCA(c,d) != b")
	}
	if LowestCommonAncestor(c, f) != a {
		t.Fatalf("LCA(c,f) != a")
	}
	if LowestCommonAncestor(b, c) != b {
		t.Fatalf("LCA(b,c) != b (ancestor-or-self)")
	}
}

// TestCompareOrderMatchesWalk: document order from CompareOrder equals the
// preorder walk sequence on random documents.
func TestCompareOrderMatchesWalk(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		doc := Random(RandomConfig{Nodes: 150, MaxFanout: 5, Seed: seed})
		nodes := doc.DocumentElement().Nodes()
		for i := range nodes {
			for j := range nodes {
				want := 0
				if i < j {
					want = -1
				} else if i > j {
					want = 1
				}
				if got := CompareOrder(nodes[i], nodes[j]); got != want {
					t.Fatalf("seed %d: CompareOrder(#%d, #%d) = %d, want %d",
						seed, i, j, got, want)
				}
			}
		}
	}
}

func TestCompareOrderAttributes(t *testing.T) {
	doc := mustParse(t, `<a p="1" q="2"><b r="3"/><c/></a>`)
	a := doc.DocumentElement()
	p, q := a.Attrs[0], a.Attrs[1]
	b, c := a.Children[0], a.Children[1]
	r := b.Attrs[0]
	ordered := []*Node{a, p, q, b, r, c}
	for i := range ordered {
		for j := range ordered {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := CompareOrder(ordered[i], ordered[j]); got != want {
				t.Fatalf("CompareOrder(#%d, #%d) = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestAxesGroundTruth(t *testing.T) {
	doc := mustParse(t, `<a><b><c/><d/></b><e><f/><g/></e><h/></a>`)
	a := doc.DocumentElement()
	b := a.Children[0]
	d := b.Children[1]
	e := a.Children[1]
	f := e.Children[0]

	if got := nodeNames(Following(d)); got != "e,f,g,h" {
		t.Errorf("Following(d) = %s", got)
	}
	if got := nodeNames(Preceding(f)); got != "b,c,d" {
		t.Errorf("Preceding(f) = %s", got)
	}
	if got := nodeNames(FollowingSiblings(b)); got != "e,h" {
		t.Errorf("FollowingSiblings(b) = %s", got)
	}
	if got := nodeNames(PrecedingSiblings(a.Children[2])); got != "e,b" {
		t.Errorf("PrecedingSiblings(h) = %s", got)
	}
	if got := nodeNames(Descendants(a)); got != "b,c,d,e,f,g,h" {
		t.Errorf("Descendants(a) = %s", got)
	}
	if got := nodeNames(Ancestors(d)); got != "b,a,document" {
		t.Errorf("Ancestors(d) = %s", got)
	}
}

func nodeNames(nodes []*Node) string {
	s := ""
	for i, n := range nodes {
		if i > 0 {
			s += ","
		}
		if n.Kind == Document {
			s += "document"
		} else {
			s += n.Name
		}
	}
	return s
}

// genSpec drives quick generation of random documents.
type genSpec struct {
	Nodes, MaxFanout int
	Seed             int64
}

func (genSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(genSpec{Nodes: 2 + r.Intn(120), MaxFanout: 2 + r.Intn(6), Seed: r.Int63()})
}

// TestQuickOrderConsistency: CompareOrder is antisymmetric and transitive
// on random triples, and an ancestor always precedes its descendants.
func TestQuickOrderConsistency(t *testing.T) {
	f := func(s genSpec, i, j, k uint16) bool {
		doc := Random(RandomConfig{Nodes: s.Nodes, MaxFanout: s.MaxFanout, Seed: s.Seed})
		nodes := doc.DocumentElement().Nodes()
		a := nodes[int(i)%len(nodes)]
		b := nodes[int(j)%len(nodes)]
		c := nodes[int(k)%len(nodes)]
		if CompareOrder(a, b) != -CompareOrder(b, a) {
			return false
		}
		if CompareOrder(a, b) < 0 && CompareOrder(b, c) < 0 && CompareOrder(a, c) >= 0 {
			return false
		}
		if IsAncestor(a, b) && CompareOrder(a, b) != -1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFollowingPreceding: the following and preceding axes partition
// the document relative to a node together with ancestors, descendants and
// the node itself.
func TestQuickFollowingPreceding(t *testing.T) {
	f := func(s genSpec, pick uint16) bool {
		doc := Random(RandomConfig{Nodes: s.Nodes, MaxFanout: s.MaxFanout, Seed: s.Seed})
		all := doc.DocumentElement().Nodes()
		n := all[int(pick)%len(all)]
		count := len(Following(n)) + len(Preceding(n)) +
			len(Descendants(n)) + len(Ancestors(n)) + 1
		// Ancestors includes the Document node, which Nodes() excludes.
		return count == len(all)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
