// Package ancestry implements Fraigniaud–Korman style compact ancestry
// labels over a heavy-path decomposition of the document tree.
//
// Every root-to-node path is summarized by the sequence of its *light*
// edges: at each internal node the child with the largest subtree is the
// heavy child, and the (at most ⌊log₂ n⌋) steps of a root path that leave
// the heavy child are recorded as (depth, child-rank) pairs. A node's label
// is its depth plus this light sequence — the whole path is reconstructible
// by following heavy children except at the recorded depths, so the label
// identifies the node and the ancestry test needs nothing else:
//
//	u is a proper ancestor of v  ⇔  depth(u) < depth(v),
//	    lightSeq(u) is a prefix of lightSeq(v), and the first entry of
//	    lightSeq(v) beyond that prefix (if any) lies deeper than depth(u).
//
// That is the small-depth/compact trade the PAPERS.md survey contrasts with
// interval and UID-family schemes: O(log n) words per label, constant-time
// ancestry, but no identifier arithmetic — parents and siblings cannot be
// *generated*, only *tested*. The scheme is therefore registered read-only
// and without axis support; the planner pairs it with the comparison-only
// merge kernels.
//
// A preorder rank rides along in each identifier as the document-order
// component (scheme.ID keys must sort in document order for the storage
// layer); the ancestry decision itself never reads it.
package ancestry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// ErrReadOnly is returned by the mutating entry points the scheme does not
// support; it exists so callers can distinguish "unsupported by design"
// from transient failures.
var ErrReadOnly = errors.New("ancestry: scheme is read-only")

// ID is a compact ancestry label: depth, packed light sequence, and the
// preorder rank used only for document order and index keys.
type ID struct {
	Pre   int64
	Depth int32
	// light packs the light-edge sequence as big-endian (uint32 depth,
	// uint32 child-rank) pairs, ordered by increasing depth. Packing as a
	// string keeps ID comparable.
	light string
}

// String renders the label as depth:(d→c,…)@pre.
func (id ID) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:(", id.Depth)
	for i := 0; i+8 <= len(id.light); i += 8 {
		if i > 0 {
			b.WriteByte(',')
		}
		d := binary.BigEndian.Uint32([]byte(id.light[i : i+4]))
		c := binary.BigEndian.Uint32([]byte(id.light[i+4 : i+8]))
		fmt.Fprintf(&b, "%d→%d", d, c)
	}
	fmt.Fprintf(&b, ")@%d", id.Pre)
	return b.String()
}

// Key implements scheme.ID: the big-endian preorder rank, so bytes.Compare
// on keys is document order.
func (id ID) Key() []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(id.Pre))
	return k[:]
}

// labelKey is the ancestry-relevant part of the identifier (depth + light
// sequence); it determines the node uniquely.
func (id ID) labelKey() string {
	var d [4]byte
	binary.BigEndian.PutUint32(d[:], uint32(id.Depth))
	return string(d[:]) + id.light
}

// LightEdges returns the number of light edges recorded in the label.
func (id ID) LightEdges() int { return len(id.light) / 8 }

// Numbering is a compact ancestry labeling of one tree snapshot. It
// implements scheme.Scheme, scheme.Depther and scheme.LabelSizer; it is
// deliberately not an AxisScheme and not Updatable.
type Numbering struct {
	root    *xmltree.Node
	ids     map[*xmltree.Node]ID
	byPre   []*xmltree.Node
	byLabel map[string]*xmltree.Node

	labelBits int // compact-label footprint, in bits
}

// Build labels doc (a Document node or an element treated as root).
func Build(doc *xmltree.Node) (*Numbering, error) {
	root := doc
	if doc.Kind == xmltree.Document {
		root = doc.DocumentElement()
		if root == nil {
			return nil, errors.New("ancestry: document has no root element")
		}
	}
	n := &Numbering{
		root:    root,
		ids:     make(map[*xmltree.Node]ID),
		byLabel: make(map[string]*xmltree.Node),
	}

	// Subtree sizes drive the heavy-child choice.
	size := make(map[*xmltree.Node]int)
	var measure func(d *xmltree.Node) int
	measure = func(d *xmltree.Node) int {
		s := 1
		for _, c := range d.Children {
			s += measure(c)
		}
		size[d] = s
		return s
	}
	measure(root)

	var pre int64
	var walk func(d *xmltree.Node, depth int32, light string)
	walk = func(d *xmltree.Node, depth int32, light string) {
		id := ID{Pre: pre, Depth: depth, light: light}
		pre++
		n.ids[d] = id
		n.byPre = append(n.byPre, d)
		n.byLabel[id.labelKey()] = d
		n.labelBits += labelBits(id)

		heavy := -1
		best := -1
		for i, c := range d.Children {
			if size[c] > best {
				best, heavy = size[c], i
			}
		}
		for i, c := range d.Children {
			if i == heavy {
				walk(c, depth+1, light)
				continue
			}
			var e [8]byte
			binary.BigEndian.PutUint32(e[:4], uint32(depth)+1)
			binary.BigEndian.PutUint32(e[4:], uint32(i)+1)
			walk(c, depth+1, light+string(e[:]))
		}
	}
	walk(root, 0, "")
	return n, nil
}

// labelBits charges the information-theoretic size of the compact label:
// a varint for the depth plus a varint pair per light edge. The preorder
// crutch is charged too — it is part of what this implementation stores.
func labelBits(id ID) int {
	bits := varintBits(uint64(id.Depth)) + varintBits(uint64(id.Pre))
	for i := 0; i+8 <= len(id.light); i += 8 {
		d := binary.BigEndian.Uint32([]byte(id.light[i : i+4]))
		c := binary.BigEndian.Uint32([]byte(id.light[i+4 : i+8]))
		bits += varintBits(uint64(d)) + varintBits(uint64(c))
	}
	return bits
}

func varintBits(v uint64) int {
	n := 8
	for v >= 0x80 {
		v >>= 7
		n += 8
	}
	return n
}

// Name implements scheme.Scheme.
func (n *Numbering) Name() string { return "ancestry" }

// Size returns the number of labeled nodes.
func (n *Numbering) Size() int { return len(n.ids) }

// LabelBytes implements scheme.LabelSizer: total varint-coded label
// footprint, rounded up per node during accumulation.
func (n *Numbering) LabelBytes() int { return (n.labelBits + 7) / 8 }

// IDOf implements scheme.Scheme.
func (n *Numbering) IDOf(node *xmltree.Node) (scheme.ID, bool) {
	id, ok := n.ids[node]
	if !ok {
		return nil, false
	}
	return id, true
}

// NodeOf implements scheme.Scheme.
func (n *Numbering) NodeOf(id scheme.ID) (*xmltree.Node, bool) {
	aid, ok := id.(ID)
	if !ok {
		return nil, false
	}
	if aid.Pre < 0 || aid.Pre >= int64(len(n.byPre)) {
		return nil, false
	}
	node := n.byPre[aid.Pre]
	if n.ids[node] != aid {
		return nil, false
	}
	return node, true
}

// Parent implements scheme.Scheme. The *label* of the parent is computed
// from the child's label alone — drop the last light entry if it sits at
// the child's depth (the child was reached over a light edge), keep the
// sequence otherwise, and decrement the depth — but recovering the parent's
// preorder rank requires the byLabel table. That stored-lookup step is why
// the scheme does not claim the ComputedParent capability.
func (n *Numbering) Parent(id scheme.ID) (scheme.ID, bool) {
	aid, ok := id.(ID)
	if !ok || aid.Depth == 0 {
		return nil, false
	}
	light := aid.light
	if l := len(light); l >= 8 {
		lastDepth := binary.BigEndian.Uint32([]byte(light[l-8 : l-4]))
		if lastDepth == uint32(aid.Depth) {
			light = light[:l-8]
		}
	}
	probe := ID{Depth: aid.Depth - 1, light: light}
	node, ok := n.byLabel[probe.labelKey()]
	if !ok {
		return nil, false
	}
	return n.ids[node], true
}

// IsAncestor implements scheme.Scheme from the compact labels alone: anc's
// light sequence must be the ≤-depth(anc) prefix of desc's.
func (n *Numbering) IsAncestor(anc, desc scheme.ID) bool {
	a, ok := anc.(ID)
	if !ok {
		return false
	}
	d, ok := desc.(ID)
	if !ok {
		return false
	}
	if a.Depth >= d.Depth {
		return false
	}
	if !strings.HasPrefix(d.light, a.light) {
		return false
	}
	if len(d.light) > len(a.light) {
		next := binary.BigEndian.Uint32([]byte(d.light[len(a.light) : len(a.light)+4]))
		if next <= uint32(a.Depth) {
			return false
		}
	}
	return true
}

// CompareOrder implements scheme.Scheme through the preorder component.
func (n *Numbering) CompareOrder(a, b scheme.ID) int {
	pa, pb := a.(ID).Pre, b.(ID).Pre
	switch {
	case pa < pb:
		return -1
	case pa > pb:
		return 1
	default:
		return 0
	}
}

// Depth implements scheme.Depther.
func (n *Numbering) Depth(id scheme.ID) (int, bool) {
	aid, ok := id.(ID)
	if !ok {
		return 0, false
	}
	return int(aid.Depth), true
}

func init() {
	scheme.Register(scheme.Registration{
		Name: "ancestry",
		Caps: scheme.Capabilities{Depth: true, OrderedKeys: true},
		Build: func(doc *xmltree.Node) (scheme.Scheme, error) {
			return Build(doc)
		},
	})
}
