package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("exec.ops").Add(3)
	reg.Histogram("exec.op_ns").Observe(1500)
	h := Handler(reg)

	code, body := get(t, h, "/metrics")
	if code != 200 || !strings.Contains(body, "exec.ops 3") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if !strings.Contains(body, "exec.op_ns count=1") {
		t.Errorf("/metrics missing histogram: %q", body)
	}

	code, body = get(t, h, "/metrics.json")
	if code != 200 {
		t.Fatalf("/metrics.json: %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if snap["exec.ops"] != float64(3) {
		t.Errorf("json exec.ops = %v", snap["exec.ops"])
	}

	code, body = get(t, h, "/debug/vars")
	if code != 200 || !strings.Contains(body, `"ruid"`) {
		t.Fatalf("/debug/vars: %d (registry not published)", code)
	}

	code, _ = get(t, h, "/debug/pprof/")
	if code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("doc.queries").Inc()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "doc.queries 1") {
		t.Fatalf("served metrics: %q", body)
	}
}
