package core

import (
	"repro/internal/scheme"
)

// XPath axis generation (§3.5 of the paper). Each routine derives candidate
// identifier ranges arithmetically from κ and the table K, then intersects
// them with the existing identifiers via a range scan of the (global,
// local) clustered index; the root-indicator of each candidate is decided
// exactly as the paper describes, by looking the candidate's local slot up
// among the frame children of the context area.

// childContext returns the area in which id's children are enumerated and
// id's local index inside that area: an area root's children live in its
// own area where it has local index 1; an interior node's children share
// its area and its local index.
func (n *Numbering) childContext(id ID) (g, l int64) {
	if id.Root {
		return id.Global, 1
	}
	return id.Global, id.Local
}

// siblingContext returns the area in which id itself was enumerated and its
// local index there: the upper area for an area root, its own area
// otherwise.
func (n *Numbering) siblingContext(id ID) (g, l int64, ok bool) {
	if id == RootID {
		return 0, 0, false
	}
	if id.Root {
		return (id.Global-2)/n.kappa + 1, id.Local, true
	}
	return id.Global, id.Local, true
}

// resolveLocal turns an existing local slot of area a into a full
// identifier: if the slot holds the root of a lower area (found among the
// frame children of a, as in the paper's rchildren routine), the identifier
// is (childGlobal, slot, true); otherwise (a.global, slot, false).
func (a *area) resolveLocal(slot int64) ID {
	if cg, ok := a.rootByLocal[slot]; ok {
		return ID{Global: cg, Local: slot, Root: true}
	}
	if slot == 1 {
		// The area's own root occupies slot 1; its identifier carries its
		// index in the upper area.
		if a.global == 1 {
			return RootID
		}
		return ID{Global: a.global, Local: a.rootLocal, Root: true}
	}
	return ID{Global: a.global, Local: slot, Root: false}
}

// Ancestors implements scheme.AxisScheme (rancestor of §3.5): a repetition
// of RParent, nearest ancestor first.
func (n *Numbering) Ancestors(id scheme.ID) []scheme.ID {
	var out []scheme.ID
	cur := id.(ID)
	for {
		p, ok, err := n.RParent(cur)
		if err != nil || !ok {
			return out
		}
		out = append(out, p)
		cur = p
	}
}

// Children implements scheme.AxisScheme (rchildren of §3.5).
func (n *Numbering) Children(id scheme.ID) []scheme.ID {
	g, l := n.childContext(id.(ID))
	a, ok := n.areas[g]
	if !ok {
		return nil
	}
	lo := (l-1)*a.fanout + 2
	hi := l*a.fanout + 1
	slots := a.localsInRange(lo, hi)
	out := make([]scheme.ID, 0, len(slots))
	for _, s := range slots {
		out = append(out, a.resolveLocal(s))
	}
	return out
}

// Descendants implements scheme.AxisScheme (rdescendant of §3.5) as a
// preorder repetition of Children; crossing into a lower area happens
// automatically when a child resolves to an area root.
func (n *Numbering) Descendants(id scheme.ID) []scheme.ID {
	var out []scheme.ID
	var walk func(cur ID)
	walk = func(cur ID) {
		for _, c := range n.Children(cur) {
			out = append(out, c)
			walk(c.(ID))
		}
	}
	walk(id.(ID))
	return out
}

// FollowingSiblings implements scheme.AxisScheme (rfsibling of §3.5).
func (n *Numbering) FollowingSiblings(id scheme.ID) []scheme.ID {
	g, l, ok := n.siblingContext(id.(ID))
	if !ok {
		return nil
	}
	a := n.areas[g]
	p := (l-2)/a.fanout + 1
	hi := p*a.fanout + 1
	slots := a.localsInRange(l+1, hi)
	out := make([]scheme.ID, 0, len(slots))
	for _, s := range slots {
		out = append(out, a.resolveLocal(s))
	}
	return out
}

// PrecedingSiblings implements scheme.AxisScheme (rpsibling of §3.5),
// nearest sibling first per the XPath reverse-axis convention.
func (n *Numbering) PrecedingSiblings(id scheme.ID) []scheme.ID {
	g, l, ok := n.siblingContext(id.(ID))
	if !ok {
		return nil
	}
	a := n.areas[g]
	p := (l-2)/a.fanout + 1
	lo := (p-1)*a.fanout + 2
	slots := a.localsInRange(lo, l-1)
	out := make([]scheme.ID, 0, len(slots))
	for i := len(slots) - 1; i >= 0; i-- {
		out = append(out, a.resolveLocal(slots[i]))
	}
	return out
}

// Following implements scheme.AxisScheme (rfollowing of §3.5): for each
// ancestor-or-self, its following siblings and their whole subtrees, in
// document order. By Lemma 3 this touches only the node's own area and its
// frame ancestors before expanding whole following areas.
func (n *Numbering) Following(id scheme.ID) []scheme.ID {
	var out []scheme.ID
	cur := id.(ID)
	for {
		for _, s := range n.FollowingSiblings(cur) {
			out = append(out, s)
			out = append(out, n.Descendants(s)...)
		}
		p, ok, err := n.RParent(cur)
		if err != nil || !ok {
			return out
		}
		cur = p
	}
}

// Preceding implements scheme.AxisScheme (rpreceding of §3.5), in document
// order: walking the ancestor chain from the root down, each
// ancestor-or-self's preceding siblings and their subtrees.
func (n *Numbering) Preceding(id scheme.ID) []scheme.ID {
	chain := []ID{id.(ID)}
	for {
		p, ok, err := n.RParent(chain[len(chain)-1])
		if err != nil || !ok {
			break
		}
		chain = append(chain, p)
	}
	var out []scheme.ID
	for i := len(chain) - 1; i >= 0; i-- {
		sibs := n.PrecedingSiblings(chain[i]) // nearest first
		for j := len(sibs) - 1; j >= 0; j-- { // document order
			out = append(out, sibs[j])
			out = append(out, n.Descendants(sibs[j])...)
		}
	}
	return out
}
