// Package prepost implements two interval-style numbering baselines from
// the paper's related work (§6):
//
//   - the preorder/postorder scheme of Dietz [3]: each node is labeled
//     (pre, post); anc is an ancestor of desc iff pre(anc) < pre(desc) and
//     post(anc) > post(desc);
//   - the extended-preorder scheme of Li and Moon [6]: each node is labeled
//     (order, size); anc is an ancestor of desc iff
//     order(anc) < order(desc) ≤ order(anc) + size(anc), with slack in the
//     size intervals to absorb insertions.
//
// Unlike the UID family, these schemes can only *compare* two known
// identifiers: the parent's identifier is not computable from a child's by
// arithmetic, so Parent requires an auxiliary structure (here, a stored
// parent label per node). This is exactly the contrast the paper draws
// ("Whereas other numbering schemes only can compare two identifiers, …
// the UID technique has an interesting property whereby the parent node can
// be determined based on the identifier of the child node.").
package prepost

import (
	"errors"
	"fmt"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// ID is a Dietz-style (pre, post) label. It implements scheme.ID.
// Par carries the stored preorder rank of the parent (-1 for the root),
// because pre/post labels alone cannot produce the parent identifier.
type ID struct {
	Pre  int64
	Post int64
	Par  int64
}

// String renders the label as "(pre, post)".
func (id ID) String() string { return fmt.Sprintf("(%d, %d)", id.Pre, id.Post) }

// Key returns an 8-byte big-endian encoding of the preorder rank; preorder
// rank equals document order, so key order is document order.
func (id ID) Key() []byte {
	var b [8]byte
	v := uint64(id.Pre)
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
	return b[:]
}

// Numbering is a pre/post numbering of one document snapshot. It implements
// scheme.Scheme (not AxisScheme: pre/post supports ancestor tests and range
// scans, but cannot generate parent or sibling identifiers arithmetically).
type Numbering struct {
	root  *xmltree.Node
	ids   map[*xmltree.Node]ID
	byPre []*xmltree.Node // byPre[pre] = node
}

// Build numbers doc by preorder and postorder traversal ranks.
func Build(doc *xmltree.Node) (*Numbering, error) {
	root := doc
	if doc.Kind == xmltree.Document {
		root = doc.DocumentElement()
		if root == nil {
			return nil, errors.New("prepost: document has no root element")
		}
	}
	n := &Numbering{root: root, ids: make(map[*xmltree.Node]ID)}
	var pre, post int64
	var walk func(d *xmltree.Node, par int64)
	walk = func(d *xmltree.Node, par int64) {
		myPre := pre
		pre++
		n.byPre = append(n.byPre, d)
		for _, c := range d.Children {
			walk(c, myPre)
		}
		n.ids[d] = ID{Pre: myPre, Post: post, Par: par}
		post++
	}
	walk(root, -1)
	return n, nil
}

// Name implements scheme.Scheme.
func (n *Numbering) Name() string { return "prepost" }

// Size returns the number of numbered nodes.
func (n *Numbering) Size() int { return len(n.ids) }

// IDOf implements scheme.Scheme.
func (n *Numbering) IDOf(node *xmltree.Node) (scheme.ID, bool) {
	id, ok := n.ids[node]
	if !ok {
		return nil, false
	}
	return id, true
}

// NodeOf implements scheme.Scheme.
func (n *Numbering) NodeOf(id scheme.ID) (*xmltree.Node, bool) {
	pid := id.(ID)
	if pid.Pre < 0 || pid.Pre >= int64(len(n.byPre)) {
		return nil, false
	}
	node := n.byPre[pid.Pre]
	if got := n.ids[node]; got != pid {
		return nil, false
	}
	return node, true
}

// Parent implements scheme.Scheme. For pre/post the parent label must be
// looked up through the stored parent rank — it is not computable from
// (pre, post) alone, which is the structural weakness the UID family
// addresses.
func (n *Numbering) Parent(id scheme.ID) (scheme.ID, bool) {
	pid := id.(ID)
	if pid.Par < 0 {
		return nil, false
	}
	p := n.byPre[pid.Par]
	return n.ids[p], true
}

// IsAncestor implements scheme.Scheme with the Dietz criterion: pure label
// comparison, O(1).
func (n *Numbering) IsAncestor(anc, desc scheme.ID) bool {
	a := anc.(ID)
	d := desc.(ID)
	return a.Pre < d.Pre && a.Post > d.Post
}

// CompareOrder implements scheme.Scheme: preorder rank is document order.
func (n *Numbering) CompareOrder(a, b scheme.ID) int {
	av := a.(ID).Pre
	bv := b.(ID).Pre
	switch {
	case av < bv:
		return -1
	case av > bv:
		return 1
	default:
		return 0
	}
}

// DescendantRange returns the preorder interval (lo, hi] such that every
// node with lo < pre ≤ hi is a proper descendant of id — the containment
// range scan used by interval schemes for the descendant axis.
func (n *Numbering) DescendantRange(id scheme.ID) (lo, hi int64) {
	pid := id.(ID)
	lo = pid.Pre
	hi = pid.Pre
	// Descendants of a node are exactly the nodes with pre > pid.Pre and
	// post < pid.Post; by preorder contiguity they occupy
	// [pid.Pre+1, pid.Pre+subtreeSize-1].
	node := n.byPre[pid.Pre]
	hi = pid.Pre + int64(xmltree.CountNodes(node)) - 1
	return lo, hi
}

// Descendants returns the identifiers of the proper descendants of id in
// document order via the preorder range scan.
func (n *Numbering) Descendants(id scheme.ID) []scheme.ID {
	lo, hi := n.DescendantRange(id)
	out := make([]scheme.ID, 0, hi-lo)
	for p := lo + 1; p <= hi; p++ {
		out = append(out, n.ids[n.byPre[p]])
	}
	return out
}
