package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/uid"
	"repro/internal/xmltree"
)

// E1Figure1 regenerates Fig. 1 of the paper: the original UID enumeration
// of the figure's tree before and after inserting a node between nodes 2
// and 3, plus the full renumbering the second insertion forces.
func E1Figure1() *Table {
	t := &Table{
		ID:     "E1",
		Title:  "Original UID before/after node insertion",
		Note:   "paper Fig. 1: nodes 3, 8, 9, 23, 26, 27 become 4, 11, 12, 32, 35, 36",
		Header: []string{"node", "uid before", "uid after insert", "after 2nd insert (rebuild, k=4)"},
	}
	doc, labels := xmltree.PaperFigure1()
	n, err := uid.Build(doc, uid.Options{K: 3})
	if err != nil {
		panic(err)
	}
	before := map[int64]string{}
	for v, node := range labels {
		id, _ := n.IDOf(node)
		before[v] = id.String()
	}
	if _, err := n.InsertChild(labels[1], 1, xmltree.NewElement("new")); err != nil {
		panic(err)
	}
	after := map[int64]string{}
	for v, node := range labels {
		id, _ := n.IDOf(node)
		after[v] = id.String()
	}
	if _, err := n.InsertChild(labels[1], 3, xmltree.NewElement("new2")); err != nil {
		panic(err)
	}
	for _, v := range []int64{1, 2, 3, 8, 9, 23, 26, 27} {
		id, _ := n.IDOf(labels[v])
		t.AddRow(fmt.Sprintf("n%d", v), before[v], after[v], id.String())
	}
	return t
}

// E2PaperExample regenerates Fig. 4/Fig. 5 and Example 2: the 2-level ruid
// of the reconstructed example tree, its table K, and the three rparent()
// walkthroughs.
func E2PaperExample() (ids, tableK, walkthrough *Table) {
	doc, nodes, rootNames := xmltree.PaperExampleTree()
	roots := map[*xmltree.Node]bool{}
	for _, name := range rootNames {
		roots[nodes[name]] = true
	}
	n, err := core.Build(doc, core.Options{Roots: roots})
	if err != nil {
		panic(err)
	}

	ids = &Table{
		ID:     "E2a",
		Title:  "2-level ruid of the example tree",
		Note:   "paper Fig. 4 (right): κ = 4, six UID-local areas",
		Header: []string{"node", "ruid (global, local, root)"},
	}
	doc.DocumentElement().Walk(func(x *xmltree.Node) bool {
		id, _ := n.RUID(x)
		ids.AddRow(x.Name, id.String())
		return true
	})

	tableK = &Table{
		ID:     "E2b",
		Title:  "Global parameter table K",
		Note:   "paper Fig. 5: one row per UID-local area, sorted by global index",
		Header: []string{"global index", "local index", "local fan-out"},
	}
	for _, row := range n.K() {
		tableK.AddRow(row.Global, row.RootLocal, row.Fanout)
	}

	walkthrough = &Table{
		ID:     "E2c",
		Title:  "rparent() walkthroughs",
		Note:   "paper Example 2: parent identifiers computed from κ and K only",
		Header: []string{"child", "parent (computed)", "paper says"},
	}
	cases := []struct {
		child core.ID
		paper string
	}{
		{core.ID{Global: 2, Local: 7}, "(2, 3, false)"},
		{core.ID{Global: 10, Local: 9, Root: true}, "(3, 3, false)"},
		{core.ID{Global: 3, Local: 3}, "(3, 3, true)"},
	}
	for _, c := range cases {
		p, _, err := n.RParent(c.child)
		if err != nil {
			panic(err)
		}
		walkthrough.AddRow(c.child.String(), p.String(), c.paper)
	}
	return ids, tableK, walkthrough
}

// E3IdentifierGrowth regenerates the §3.1/Observation-1 comparison:
// identifier magnitude of the original UID (bits of the largest identifier,
// whether it still fits a machine integer) against the ruid component
// magnitudes, over the document suite plus a depth sweep on recursive
// documents.
func E3IdentifierGrowth() *Table {
	t := &Table{
		ID:    "E3",
		Title: "Identifier magnitude: original UID vs 2-level ruid",
		Note:  "§3.1 + Observation 1: UID grows as k^depth and overflows; ruid components stay machine-sized",
		Header: []string{
			"document", "nodes", "max fan-out", "depth",
			"uid bits", "uid fits int64", "ruid areas", "ruid max global", "ruid max local",
		},
	}
	addDoc := func(name string, doc *xmltree.Node) {
		stats := xmltree.Measure(doc.DocumentElement())
		un := BuildUID(doc)
		rn := BuildRUID(doc)
		t.AddRow(
			name, stats.Nodes, stats.MaxFanout, stats.MaxDepth,
			un.Bits(), fmt.Sprint(un.Bits() <= 63),
			rn.AreaCount(), rn.MaxGlobalIndex(), rn.MaxLocalIndex(),
		)
	}
	for _, d := range Suite() {
		addDoc(d.Name, d.Make())
	}
	// Depth sweep: the recursion case Observation 1 singles out. Width 1
	// keeps the node count linear in depth while the UID identifier
	// magnitude still grows as k^depth (each section has three children:
	// title, para, and the nested section).
	for _, depth := range []int{4, 8, 16, 32, 64} {
		addDoc(fmt.Sprintf("recursive-1x%d", depth), xmltree.Recursive(1, depth))
	}
	return t
}

// E3VirtualWaste quantifies the virtual-node padding of the original UID:
// the identifier space consumed per real node.
func E3VirtualWaste() *Table {
	t := &Table{
		ID:    "E3b",
		Title: "Virtual-node waste of the original UID",
		Note:  "§1: \"the UID technique may enumerate a number of virtual nodes\"",
		Header: []string{
			"document", "nodes", "uid max id (bits)", "ruid slots (largest area)",
		},
	}
	for _, d := range Suite() {
		doc := d.Make()
		stats := xmltree.Measure(doc.DocumentElement())
		un := BuildUID(doc)
		rn := BuildRUID(doc)
		t.AddRow(d.Name, stats.Nodes, un.Bits(), rn.MaxLocalIndex())
	}
	return t
}
