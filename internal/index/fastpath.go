package index

import (
	"repro/internal/core"
)

// Concrete ruid fast paths for the structural joins. The generic functions
// in index.go accept any scheme.Scheme but pay for it twice per probe: the
// identifier is boxed behind the scheme.ID interface, and the hash-set
// probe allocates a key string from ID.Key(). The *RUID variants below
// exploit that core.ID is a small comparable value type: the probe sets
// are map[core.ID] (hashed in place, no allocation), the parent chain is
// computed with the concrete RParent, and the output slices are
// preallocated from the input cardinalities. Both paths return identical
// results; TestFastPathAgree pins that.
//
// Each join is split into a probe-set constructor (MakeIDSet) and an
// Append* kernel that processes one contiguous run of descendants into a
// caller-supplied buffer. The one-shot *RUID functions below are thin
// wrappers; internal/exec shards the same kernels by frame area and runs
// them concurrently against one shared probe set.

// PairID is one (ancestor, descendant) join result in unboxed form.
type PairID struct {
	Ancestor   core.ID
	Descendant core.ID
}

// IDSet is an allocation-free membership probe over concrete identifiers —
// the hash side of the upward joins. It is built once per join and then
// only read, so concurrent shard kernels may share one instance.
type IDSet map[core.ID]struct{}

// MakeIDSet builds the probe set of ids.
func MakeIDSet(ids []core.ID) IDSet {
	set := make(IDSet, len(ids))
	for _, id := range ids {
		set[id] = struct{}{}
	}
	return set
}

// rparentID climbs one step with the concrete rparent arithmetic; a foreign
// identifier (error) terminates the climb like the root does.
func rparentID(n *core.Numbering, id core.ID) (core.ID, bool) {
	p, ok, err := n.RParent(id)
	if err != nil {
		return core.ID{}, false
	}
	return p, ok
}

// AppendUpwardJoinRUID is the upward-join kernel over one descendant run:
// for every d in descs whose ancestor chain hits set, the (ancestor, d)
// pairs are appended to out in climb order (nearest ancestor first), and
// the extended slice is returned.
func AppendUpwardJoinRUID(n *core.Numbering, set IDSet, descs []core.ID, out []PairID) []PairID {
	for _, d := range descs {
		cur := d
		for {
			p, ok := rparentID(n, cur)
			if !ok {
				break
			}
			if _, hit := set[p]; hit {
				out = append(out, PairID{Ancestor: p, Descendant: d})
			}
			cur = p
		}
	}
	return out
}

// UpwardJoinRUID is the unboxed form of UpwardJoin: every pair (a, d) with
// a ∈ ancs a proper ancestor of d ∈ descs, in document order of the
// descendant, computed by rparent arithmetic against a hash of ancs.
func UpwardJoinRUID(n *core.Numbering, ancs, descs []core.ID) []PairID {
	return AppendUpwardJoinRUID(n, MakeIDSet(ancs), descs, make([]PairID, 0, len(descs)))
}

// AppendUpwardSemiJoinRUID is the upward-semi-join kernel over one
// descendant run: every d in descs with at least one ancestor in set is
// appended to out (input order preserved).
func AppendUpwardSemiJoinRUID(n *core.Numbering, set IDSet, descs []core.ID, out []core.ID) []core.ID {
	for _, d := range descs {
		cur := d
		for {
			p, ok := rparentID(n, cur)
			if !ok {
				break
			}
			if _, hit := set[p]; hit {
				out = append(out, d)
				break
			}
			cur = p
		}
	}
	return out
}

// UpwardSemiJoinRUID is the unboxed form of UpwardSemiJoin: the descendants
// of descs having at least one ancestor in ancs, in input order.
func UpwardSemiJoinRUID(n *core.Numbering, ancs, descs []core.ID) []core.ID {
	return AppendUpwardSemiJoinRUID(n, MakeIDSet(ancs), descs, make([]core.ID, 0, len(descs)))
}

// AppendParentSemiJoinRUID is the parent-semi-join kernel over one
// descendant run: every d in descs whose direct parent is in set is
// appended to out. One rparent computation per candidate.
func AppendParentSemiJoinRUID(n *core.Numbering, set IDSet, descs []core.ID, out []core.ID) []core.ID {
	for _, d := range descs {
		if p, ok := rparentID(n, d); ok {
			if _, hit := set[p]; hit {
				out = append(out, d)
			}
		}
	}
	return out
}

// ParentSemiJoinRUID is the unboxed form of ParentSemiJoin: the descendants
// of descs whose direct parent is in ancs, in input order. One rparent
// computation per candidate.
func ParentSemiJoinRUID(n *core.Numbering, ancs, descs []core.ID) []core.ID {
	return AppendParentSemiJoinRUID(n, MakeIDSet(ancs), descs, make([]core.ID, 0, len(descs)))
}

// CollectAncestorHitsRUID is the probing half of the ancestor semi-join
// over one descendant run: every member of set found on the ancestor chain
// of some d ∈ descs is recorded in hit. Each shard accumulates into its own
// hit set; the caller unions them and filters the ancestor list in order.
func CollectAncestorHitsRUID(n *core.Numbering, set IDSet, descs []core.ID, hit IDSet) {
	for _, d := range descs {
		cur := d
		for {
			p, ok := rparentID(n, cur)
			if !ok {
				break
			}
			if _, in := set[p]; in {
				hit[p] = struct{}{}
			}
			cur = p
		}
	}
}

// AncestorSemiJoinRUID is the unboxed form of AncestorSemiJoin: the
// ancestors of ancs having at least one proper descendant in descs, in
// ancs order.
func AncestorSemiJoinRUID(n *core.Numbering, ancs, descs []core.ID) []core.ID {
	set := MakeIDSet(ancs)
	hit := make(IDSet)
	CollectAncestorHitsRUID(n, set, descs, hit)
	return AppendHitMembersRUID(ancs, hit, make([]core.ID, 0, len(hit)))
}

// CollectChildHitsRUID is the probing half of the child semi-join over one
// descendant run: every member of set that is the direct parent of some
// d ∈ descs is recorded in hit.
func CollectChildHitsRUID(n *core.Numbering, set IDSet, descs []core.ID, hit IDSet) {
	for _, d := range descs {
		if p, ok := rparentID(n, d); ok {
			if _, in := set[p]; in {
				hit[p] = struct{}{}
			}
		}
	}
}

// ChildSemiJoinRUID is the unboxed form of ChildSemiJoin: the ancestors of
// ancs having at least one direct child in descs, in ancs order.
func ChildSemiJoinRUID(n *core.Numbering, ancs, descs []core.ID) []core.ID {
	set := MakeIDSet(ancs)
	hit := make(IDSet)
	CollectChildHitsRUID(n, set, descs, hit)
	return AppendHitMembersRUID(ancs, hit, make([]core.ID, 0, len(hit)))
}

// AppendHitMembersRUID appends the members of ids present in hit to out,
// preserving ids order — the emission half of both bottom-up semi-joins.
// internal/exec calls it once on the union of per-shard hit sets.
func AppendHitMembersRUID(ids []core.ID, hit IDSet, out []core.ID) []core.ID {
	for _, a := range ids {
		if _, in := hit[a]; in {
			out = append(out, a)
		}
	}
	return out
}

// MergeScratch holds the reusable per-run state of the merge-join kernel:
// the open-ancestor stack and the two chain buffers. The zero value is
// ready to use; internal/exec pools instances across shards.
type MergeScratch struct {
	stack  []core.ID
	aChain []core.ID
	dChain []core.ID
}

// AppendMergeJoinRUID is the stack-based sort-merge kernel over one
// contiguous descendant run. Both inputs must be in document order. The
// kernel climbs each identifier's ancestor chain exactly once (one chain
// per admitted ancestor, one per descendant) and decides order and
// ancestorship from the chains (core.CompareChains), instead of paying
// several RParent climbs per comparison the way the boxed merge join does —
// that chain amortization is what makes the fast path fast.
//
// startStack, when non-nil, seeds the open-ancestor stack (outermost
// first): a shard kernel passes the ancs members lying on the first
// descendant's ancestor chain, which is exactly the serial algorithm's
// stack state at that descendant. ancs must start at the first candidate
// not yet admitted by that seed.
func AppendMergeJoinRUID(n *core.Numbering, ancs, descs []core.ID, startStack []core.ID, sc *MergeScratch, out []PairID) []PairID {
	if sc == nil {
		sc = &MergeScratch{}
	}
	stack := append(sc.stack[:0], startStack...)
	i := 0
	for _, d := range descs {
		dChain := n.AppendAncestorChainID(sc.dChain[:0], d)
		// Admit every ancestor candidate that starts before d.
		for i < len(ancs) {
			aChain := n.AppendAncestorChainID(sc.aChain[:0], ancs[i])
			if core.CompareChains(aChain, dChain) >= 0 {
				sc.aChain = aChain
				break
			}
			// Pop candidates whose subtree closed before this one starts.
			// Stack entries precede ancs[i] (sorted input), so "closed
			// before" is exactly "not a proper ancestor of ancs[i]".
			for len(stack) > 0 && !core.ChainContainsProper(aChain, stack[len(stack)-1]) {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ancs[i])
			sc.aChain = aChain
			i++
		}
		// Pop candidates whose subtree closed before d.
		for len(stack) > 0 && !core.ChainContainsProper(dChain, stack[len(stack)-1]) {
			stack = stack[:len(stack)-1]
		}
		// Every remaining stack entry is an ancestor of d (they are nested).
		for _, a := range stack {
			out = append(out, PairID{Ancestor: a, Descendant: d})
		}
		sc.dChain = dChain
	}
	sc.stack = stack
	return out
}

// MergeJoinRUID is the unboxed form of MergeJoin: the stack-based
// sort-merge join over document-ordered inputs, using chain-amortized
// order and ancestorship decisions.
func MergeJoinRUID(n *core.Numbering, ancs, descs []core.ID) []PairID {
	var sc MergeScratch
	return AppendMergeJoinRUID(n, ancs, descs, nil, &sc, make([]PairID, 0, len(descs)))
}
