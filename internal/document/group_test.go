package document

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

// groupFixture builds a document with small areas so batches cross area
// boundaries and exercise relabel chains.
func groupFixture(t *testing.T) *Document {
	t.Helper()
	d, err := FromTree(xmltree.Recursive(2, 6), Options{
		Partition: core.PartitionConfig{MaxAreaNodes: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// batchMutation is one scripted op for the equivalence tests.
type batchMutation struct {
	insert bool
	parent string
	pos    int
	xml    string
}

// scriptedBatch is a mixed workload: inserts at scattered parents, deletes
// of pre-existing subtrees, and an insert-then-delete pair that must leave
// no trace.
func scriptedBatch() []batchMutation {
	return []batchMutation{
		{insert: true, parent: "/book/section", pos: 0, xml: "<w1><t1/></w1>"},
		{insert: true, parent: "/book/section/section", pos: 1, xml: "<w2/>"},
		{insert: true, parent: "/book/section/section/section", pos: 0, xml: "<w3>text</w3>"},
		{parent: "/book/section/section", pos: 3}, // delete a deep pre-existing subtree
		{insert: true, parent: "/book", pos: 1, xml: "<ephemeral><x/></ephemeral>"},
		{parent: "/book", pos: 1}, // ... and remove it again
		{insert: true, parent: "/book/section", pos: 2, xml: "<w4/>"},
		{parent: "/book/section/section/section", pos: 0}, // delete the just-inserted w3
	}
}

func applySerial(t *testing.T, d *Document, muts []batchMutation) {
	t.Helper()
	for i, m := range muts {
		var err error
		if m.insert {
			sub, perr := parseSubtree(m.xml)
			if perr != nil {
				t.Fatal(perr)
			}
			_, err = d.Insert(m.parent, m.pos, sub)
		} else {
			_, err = d.Delete(m.parent, m.pos)
		}
		if err != nil {
			t.Fatalf("serial op %d: %v", i, err)
		}
	}
}

func enqueueAll(t *testing.T, d *Document, muts []batchMutation) []*Ticket {
	t.Helper()
	tickets := make([]*Ticket, len(muts))
	for i, m := range muts {
		var err error
		if m.insert {
			sub, perr := parseSubtree(m.xml)
			if perr != nil {
				t.Fatal(perr)
			}
			tickets[i], err = d.EnqueueInsert(m.parent, m.pos, sub)
		} else {
			tickets[i], err = d.EnqueueDelete(m.parent, m.pos)
		}
		if err != nil {
			t.Fatalf("enqueue op %d: %v", i, err)
		}
	}
	return tickets
}

// assertDocsEqual compares two documents' current epochs byte for byte:
// serialized tree, numbering stamps node by node, stats and a set of probe
// queries.
func assertDocsEqual(t *testing.T, got, want *Document) {
	t.Helper()
	gs, ws := got.Snapshot(), want.Snapshot()
	if g, w := xmltree.Serialize(gs.Tree()), xmltree.Serialize(ws.Tree()); g != w {
		t.Fatalf("trees diverge:\n got %s\nwant %s", g, w)
	}
	var walk func(a, b *xmltree.Node)
	walk = func(a, b *xmltree.Node) {
		if a.Kind == xmltree.Element && a.Num != b.Num {
			t.Fatalf("stamp mismatch at %s: got %+v want %+v", a.Path(), a.Num, b.Num)
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i])
		}
	}
	walk(gs.Tree(), ws.Tree())
	g, w := got.Stats(), want.Stats()
	if g.Nodes != w.Nodes || g.Areas != w.Areas || g.Names != w.Names {
		t.Fatalf("stats diverge: got %+v want %+v", g, w)
	}
	for _, q := range []string{"//section", "//title", "//w1", "//w4", "//ephemeral", "/book/section//para"} {
		gr, _, gerr := gs.Query(q)
		wr, _, werr := ws.Query(q)
		if (gerr != nil) != (werr != nil) {
			t.Fatalf("%s: errors diverge: %v vs %v", q, gerr, werr)
		}
		if len(gr) != len(wr) {
			t.Fatalf("%s: %d results, want %d", q, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i].Num != wr[i].Num || gr[i].Name != wr[i].Name {
				t.Fatalf("%s[%d]: %s%+v vs %s%+v", q, i, gr[i].Name, gr[i].Num, wr[i].Name, wr[i].Num)
			}
		}
	}
}

// TestGroupCommitEquivalence: one coalesced batch must leave the document
// byte-identical to the serial per-mutation oracle — and must publish ONE
// epoch for the whole batch.
func TestGroupCommitEquivalence(t *testing.T) {
	grouped, serial := groupFixture(t), groupFixture(t)
	muts := scriptedBatch()
	applySerial(t, serial, muts)

	// A long linger guarantees the sequentially enqueued ops coalesce.
	if err := grouped.EnableGroupCommit(GroupConfig{MaxBatch: 64, MaxDelay: 200 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer grouped.Close()
	before := grouped.Snapshot().Epoch()
	tickets := enqueueAll(t, grouped, muts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tk := range tickets {
		if _, err := tk.Wait(ctx); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if got := grouped.Snapshot().Epoch(); got != before+1 {
		t.Fatalf("batch published %d epochs, want 1", got-before)
	}
	assertDocsEqual(t, grouped, serial)

	// No trace of the insert-then-delete pair.
	if res, _, err := grouped.Query("//ephemeral"); err != nil || len(res) != 0 {
		t.Fatalf("ephemeral survived: %v %v", res, err)
	}
}

// TestGroupCommitRollback: a batch member failing mid-merge (bad path,
// out-of-range position) must fail ALONE — the rest of the batch publishes
// and the final state equals the serial application of the good members.
func TestGroupCommitRollback(t *testing.T) {
	grouped, serial := groupFixture(t), groupFixture(t)
	good := []batchMutation{
		{insert: true, parent: "/book/section", pos: 0, xml: "<w1/>"},
		{insert: true, parent: "/book/section/section", pos: 1, xml: "<w2/>"},
	}
	bad := []batchMutation{
		{insert: true, parent: "/book/nosuch", pos: 0, xml: "<nope/>"},
		{parent: "/book/section", pos: 999},
	}
	applySerial(t, serial, good)

	if err := grouped.EnableGroupCommit(GroupConfig{MaxBatch: 64, MaxDelay: 200 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer grouped.Close()
	muts := []batchMutation{good[0], bad[0], bad[1], good[1]}
	tickets := enqueueAll(t, grouped, muts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tk := range tickets {
		_, err := tk.Wait(ctx)
		wantErr := i == 1 || i == 2
		if wantErr && err == nil {
			t.Fatalf("op %d: bad mutation succeeded", i)
		}
		if !wantErr && err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	assertDocsEqual(t, grouped, serial)
}

// TestGroupCommitWALRecovery: acked mutations must survive a crash — a
// fresh document replaying the log lands byte-identical to the writer's
// final state — and a torn tail must not resurrect the unacked suffix.
func TestGroupCommitWALRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "doc.wal")
	wal, err := storage.CreateWAL(walPath, storage.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	writer := groupFixture(t)
	if err := writer.EnableGroupCommit(GroupConfig{MaxBatch: 4, MaxDelay: time.Millisecond, WAL: wal}); err != nil {
		t.Fatal(err)
	}
	muts := scriptedBatch()
	tickets := enqueueAll(t, writer, muts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, tk := range tickets {
		if tk.Seq() != int64(i+1) {
			t.Fatalf("op %d: WAL seq %d", i, tk.Seq())
		}
		if _, err := tk.Wait(ctx); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := writer.Close(); err != nil { // flush + close the log
		t.Fatal(err)
	}

	// "Crash" recovery: a fresh document over the same base image replays
	// the log and must land exactly where the writer did.
	recover := func(t *testing.T, path string) (*Document, int, int) {
		t.Helper()
		var records [][]byte
		w, err := storage.OpenWAL(path, storage.SyncGroup, func(p []byte) error {
			records = append(records, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
		d := groupFixture(t)
		epoch := d.Snapshot().Epoch()
		applied, skipped, err := d.ReplayWAL(records)
		if err != nil {
			t.Fatal(err)
		}
		if applied > 0 && d.Snapshot().Epoch() != epoch+1 {
			t.Fatalf("replay published %d epochs, want 1", d.Snapshot().Epoch()-epoch)
		}
		return d, applied, skipped
	}

	recovered, applied, skipped := recover(t, walPath)
	if applied != len(muts) || skipped != 0 {
		t.Fatalf("replay applied %d skipped %d, want %d/0", applied, skipped, len(muts))
	}
	assertDocsEqual(t, recovered, writer)

	// Torn tail: cut the file mid-record. Recovery must truncate back to
	// the last intact record and replay exactly that durable prefix — the
	// serial oracle over the surviving records.
	blob, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.wal")
	if err := os.WriteFile(torn, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	tornDoc, tornApplied, _ := recover(t, torn)
	if tornApplied != len(muts)-1 {
		t.Fatalf("torn replay applied %d, want %d", tornApplied, len(muts)-1)
	}
	oracle := groupFixture(t)
	applySerial(t, oracle, muts[:len(muts)-1])
	assertDocsEqual(t, tornDoc, oracle)
}

// TestGroupCommitConcurrent drives concurrent writers against concurrent
// pinned-snapshot readers across the async publish pipeline (run under
// -race). Invariants: a pinned snapshot answers identically forever, every
// acked insert is eventually visible, and the final count balances.
func TestGroupCommitConcurrent(t *testing.T) {
	d := groupFixture(t)
	if err := d.EnableGroupCommit(GroupConfig{MaxBatch: 16, MaxDelay: 200 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	start := d.Stats().Nodes

	const writers, perWriter, readers = 4, 25, 3
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := d.Snapshot()
				a, _, err1 := s.Query("//section")
				b, _, err2 := s.Query("//section")
				if err1 != nil || err2 != nil || len(a) != len(b) {
					t.Errorf("pinned snapshot unstable: %d vs %d (%v %v)", len(a), len(b), err1, err2)
					return
				}
			}
		}()
	}
	var werr sync.Map
	var wwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			// Writers target distinct parents so their inserts commute.
			parent := "/book/section"
			for i := 0; i < w; i++ {
				parent += "/section"
			}
			for i := 0; i < perWriter; i++ {
				tk, err := d.EnqueueInsert(parent, 0, xmltree.NewElement(fmt.Sprintf("leaf%dx%d", w, i)))
				if err != nil {
					werr.Store(fmt.Sprintf("w%d-enq%d", w, i), err)
					return
				}
				if _, err := tk.Wait(ctx); err != nil {
					werr.Store(fmt.Sprintf("w%d-wait%d", w, i), err)
					return
				}
			}
		}(w)
	}
	wwg.Wait()
	close(stop)
	wg.Wait()
	werr.Range(func(k, v any) bool {
		t.Errorf("%v: %v", k, v)
		return false
	})
	if t.Failed() {
		t.FailNow()
	}
	if got, want := d.Stats().Nodes, start+writers*perWriter; got != want {
		t.Fatalf("final nodes %d, want %d", got, want)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			q := fmt.Sprintf("//leaf%dx%d", w, i)
			if res, _, err := d.Query(q); err != nil || len(res) != 1 {
				t.Fatalf("%s: %d results, err %v", q, len(res), err)
			}
		}
	}
}

// TestGroupCommitLifecycle pins the enable/disable contract.
func TestGroupCommitLifecycle(t *testing.T) {
	d := groupFixture(t)
	if _, err := d.EnqueueInsert("/book", 0, xmltree.NewElement("x")); err != ErrNoGroupCommit {
		t.Fatalf("enqueue without group commit: %v", err)
	}
	if err := d.EnableGroupCommit(GroupConfig{}); err != nil {
		t.Fatal(err)
	}
	if !d.GroupCommit() {
		t.Fatal("GroupCommit() false while enabled")
	}
	if err := d.EnableGroupCommit(GroupConfig{}); err == nil {
		t.Fatal("double enable accepted")
	}
	tk, err := d.EnqueueInsert("/book", 0, xmltree.NewElement("x"))
	if err != nil {
		t.Fatal(err)
	}
	// Close flushes the queue: the ticket must be decided, successfully.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	default:
		t.Fatal("Close left a queued op undecided")
	}
	if _, err := tk.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.EnqueueInsert("/book", 0, xmltree.NewElement("y")); err != ErrNoGroupCommit {
		t.Fatalf("enqueue after close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestGroupCommitStageStamps pins the write-pipeline tracing contract: a
// traced EnqueueInsertCtx over a WAL must stamp all seven pipeline stages
// onto the request, and the reported timeline must be monotonically
// non-decreasing even though the stamps come from three goroutines (the
// writer, the fsync leader, the commit loop).
func TestGroupCommitStageStamps(t *testing.T) {
	wal, err := storage.CreateWAL(filepath.Join(t.TempDir(), "doc.wal"), storage.SyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	d := groupFixture(t)
	if err := d.EnableGroupCommit(GroupConfig{MaxBatch: 4, MaxDelay: time.Millisecond, WAL: wal}); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	rc := obs.NewRequest("insert", "fixture")
	ctx := obs.WithRequest(context.Background(), rc)
	tk, err := d.EnqueueInsertCtx(ctx, "/book/section", 0, xmltree.NewElement("traced"))
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := tk.Wait(wctx); err != nil {
		t.Fatal(err)
	}
	rc.Finish(200)

	stages := rc.Summary().Stages
	want := []string{
		obs.StageEnqueue, obs.StageWALAppend, obs.StageFsyncDone,
		obs.StageDequeue, obs.StageMerged, obs.StagePublished, obs.StageVisible,
	}
	got := make(map[string]bool, len(stages))
	for _, s := range stages {
		got[s.Name] = true
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("stage %q not stamped (got %v)", name, stages)
		}
	}
	if len(stages) != len(want) {
		t.Errorf("stamped %d stages, want %d: %v", len(stages), len(want), stages)
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].OffsetUS < stages[i-1].OffsetUS {
			t.Fatalf("timeline not monotone: %v", stages)
		}
	}

	// An untraced enqueue (plain context) must not panic and must not
	// leak stamps anywhere.
	tk2, err := d.EnqueueInsert("/book/section", 0, xmltree.NewElement("untraced"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk2.Wait(wctx); err != nil {
		t.Fatal(err)
	}
}
