// Package document is the serving facade over the paper's machinery: one
// Document owns the parsed XML tree, its 2-level ruid numbering, the
// element-name index, the DataGuide structural summary and the cost-based
// query planner, behind a single Open/Query/Insert/Delete/Snapshot API —
// callers no longer hand-assemble xmltree + core + index + query.
//
// # Concurrency model
//
// The Document is safe for concurrent use by any number of readers and
// writers, with snapshot isolation:
//
//   - Readers pin an immutable epoch with Snapshot (or implicitly through
//     Query). An epoch bundles a tree, a numbering (κ, the table K, the
//     per-area clustered slot lists), the index postings and the guide;
//     nothing reachable from a published epoch is ever mutated again, so
//     readers share epochs freely without locks.
//   - Writers serialize on an internal mutex and mutate the writer-private
//     master tree. Identifier maintenance on the master is the paper's
//     incremental §3.2 algorithm: an insert or delete re-enumerates only
//     the affected UID-local area (UpdateStats reports the scope), so
//     identifiers outside the update area survive across epochs. After the
//     areas are rebuilt, the writer publishes the next epoch with one
//     atomic pointer store.
//
// A reader holding an old epoch keeps querying it consistently — queries
// racing updates observe either the pre- or post-update document, never a
// mix.
//
// # Incremental epoch publication
//
// Publication is area-confined, mirroring the paper's update-scope claim:
// the writer copies only the update area's nodes plus the spine of
// ancestors up to the document node (xmltree.CloneAlong), and the next
// epoch structurally shares every untouched subtree, posting list, guide
// trie and K row with the previous epoch (core.CloneDelta,
// index.ApplyDelta, dataguide.WithUpdate). Publication cost therefore
// scales with the area budget, not the document size. Two invariants make
// the sharing safe:
//
//   - Deep immutability: no node, slot map, posting list or guide node
//     reachable from a published epoch is ever written again. Any node
//     whose identifier changes is freshly copied into the next epoch.
//   - Shared nodes keep the Parent pointers of the epoch they were first
//     copied into, so upward navigation inside an epoch goes through the
//     numbering's identifier arithmetic (RParent), never through Parent
//     pointers; downward navigation (Children, Attrs) is always
//     consistent.
//
// Updates that heal a local-index overflow by re-partitioning (reported as
// FullRebuild) fall back to a full clone publication.
//
// # Write-failure atomicity
//
// A failed Insert or Delete is a no-op: core's update operations roll back
// the tree mutation and every numbering change on any error path, no epoch
// is published, and the master stays byte-identical to the last published
// epoch's state. Readers never observe a partial write.
package document

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/exec"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/scheme"
	"repro/internal/storage"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Options configure Open.
type Options struct {
	// Scheme names the numbering scheme for the document. "" and "ruid"
	// select the paper's 2-level ruid with incremental area-confined epoch
	// publication (the serving default). "auto" measures the tree's shape
	// and lets scheme.Pick choose. Any other value resolves against the
	// scheme registry (importing this package registers every in-tree
	// scheme); non-ruid schemes publish full-clone epochs and support
	// updates only when the scheme declares the Update capability.
	Scheme string
	// Partition controls UID-local area selection for the ruid numbering.
	// Zero fields select serving-oriented defaults individually (area
	// budget 64, §2.3 fan-out adjustment on); explicitly set fields are
	// honored. Note AdjustFanout defaults to true only when the whole
	// struct is zero: a caller who sets any partition field makes the
	// fan-out decision too.
	Partition core.PartitionConfig
	// WithAttrs numbers attribute nodes too (§4: "all components of XML
	// document trees").
	WithAttrs bool
	// Parallel selects when the identifier pipelines (join chains, twig
	// matches) run frame-parallel. The zero value, exec.Auto, parallelizes
	// queries whose posting volume clears exec.DefaultMinWork and runs
	// smaller ones serially; exec.Serial pins everything to one goroutine.
	Parallel exec.Mode
	// ExecWorkers caps the query worker pool; 0 means GOMAXPROCS.
	ExecWorkers int
	// Observe, when non-nil, turns the runtime observability layer on:
	// planner, executor and publication metrics are recorded into this
	// registry for the document's whole lifetime. nil (the default) leaves
	// every hot path on its unobserved branch.
	Observe *obs.Registry
	// PoolPages, when positive, puts the document in out-of-core mode:
	// postings block bytes and node payloads live in storage.Pager pages
	// behind a shared buffer pool of PoolPages frames, faulted on demand by
	// the query kernels; only table K, the skip tables and the DataGuide
	// stay memory-resident. Requires the ruid scheme. Queries over a paged
	// document report their page I/O per stage in EXPLAIN ANALYZE, and a
	// fault failure surfaces as an *index.PagedError from Query.
	PoolPages int
}

func (o Options) coreOptions() core.Options {
	p := o.Partition
	if p == (core.PartitionConfig{}) {
		p = core.PartitionConfig{MaxAreaNodes: 64, AdjustFanout: true}
	} else if p.MaxAreaNodes == 0 {
		p.MaxAreaNodes = 64
	}
	return core.Options{Partition: p, WithAttrs: o.WithAttrs}
}

// Document is a numbered XML document that serves concurrent queries while
// accepting structural updates. Create one with Open, OpenString or
// FromTree; the zero value is not usable.
type Document struct {
	opts core.Options
	exec *exec.Executor // schedules every epoch's identifier pipelines
	reg  *obs.Registry  // nil when unobserved
	dm   *docMetrics    // resolved metric pointers; nil when unobserved

	mu     sync.Mutex    // serializes writers and epoch publication
	master *xmltree.Node // writer-private tree; never exposed to readers
	num    *core.Numbering

	// Generic-scheme mode (schemeName != "ruid"): num is nil, the master is
	// numbered by gs (built by sreg.Build), and every publication is a full
	// clone re-numbered through the registry constructor.
	schemeName string
	sreg       scheme.Registration
	gs         scheme.Scheme

	// m2e maps every live master node (attributes included) to its
	// counterpart in the newest published epoch. Incremental publication
	// resolves shared subtrees through it and re-points the entries of
	// freshly copied nodes.
	m2e map[*xmltree.Node]*xmltree.Node

	// nodeCount and depthSum maintain the planner's cardinality statistics
	// (non-attribute nodes from the root element down; sum of their
	// depths) incrementally, so publication need not re-walk the document.
	nodeCount int
	depthSum  int

	// Out-of-core mode (Options.PoolPages > 0): store holds the postings
	// blobs and the node-payload table behind one shared buffer pool, and
	// every published snapshot's index pages its block bytes through it.
	// readonly marks a cold-opened document (OpenBundle), whose master tree
	// is shared with its snapshot and therefore must not be mutated.
	poolPages int
	store     *storage.DocStore
	readonly  bool

	epoch uint64
	cur   atomic.Pointer[Snapshot]

	// grp is the group-commit write path (group.go), nil until
	// EnableGroupCommit. Held in an atomic pointer so Enqueue* never takes
	// d.mu on the intake side.
	grp atomic.Pointer[groupCommitter]
}

// Snapshot is one immutable epoch of a Document: a consistent bundle of
// tree, numbering, name index, DataGuide and planner. Snapshots are safe
// for concurrent use and stay valid (and unchanged) after later updates.
// Successive epochs structurally share untouched subtrees; see the package
// comment for the navigation invariant this implies.
type Snapshot struct {
	epoch      uint64
	tree       *xmltree.Node
	num        *core.Numbering // nil when the document uses a non-ruid scheme
	s          scheme.Scheme   // the epoch's numbering, whatever the scheme
	schemeName string
	planner    *query.Planner

	// nodes is the canonical node count of this epoch under the facade's
	// accounting rule: non-attribute nodes from the root element down —
	// exactly the population subtreeStats maintains across updates. Carried
	// on the snapshot so Stats never re-walks the tree (and so the generic
	// and ruid paths answer from the same maintained figure; the ruid Areas
	// and Kappa stats still come from the numbering, whose Size additionally
	// counts attributes when the document was opened WithAttrs).
	nodes int
}

// Open parses an XML document from r and numbers it.
func Open(r io.Reader, opts Options) (*Document, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromTree(doc, opts)
}

// OpenString parses an XML document held in a string and numbers it.
func OpenString(src string, opts Options) (*Document, error) {
	doc, err := xmltree.ParseString(src)
	if err != nil {
		return nil, err
	}
	return FromTree(doc, opts)
}

// FromTree numbers an already-parsed tree. The Document takes ownership of
// doc: the caller must not read or mutate it afterwards (readers work on
// snapshot copies; writers on the master).
func FromTree(doc *xmltree.Node, opts Options) (*Document, error) {
	name := opts.Scheme
	if name == "" {
		name = "ruid"
	}
	if name == "auto" {
		name = scheme.Pick(xmltree.Measure(doc))
	}
	if opts.PoolPages > 0 && name != "ruid" {
		return nil, fmt.Errorf("document: out-of-core mode (PoolPages) requires the ruid scheme, got %q", name)
	}
	d := &Document{
		opts:       opts.coreOptions(),
		exec:       exec.New(exec.Config{Mode: opts.Parallel, Workers: opts.ExecWorkers, Observe: opts.Observe}),
		reg:        opts.Observe,
		dm:         newDocMetrics(opts.Observe),
		master:     doc,
		schemeName: name,
		poolPages:  opts.PoolPages,
	}
	if name == "ruid" {
		num, err := core.Build(doc, d.opts)
		if err != nil {
			return nil, err
		}
		d.num = num
		num.Root().Walk(func(x *xmltree.Node) bool {
			d.nodeCount++
			d.depthSum += x.Depth()
			return true
		})
		d.mu.Lock()
		defer d.mu.Unlock()
		return d, d.publishFullLocked(d.nodeCount, d.depthSum)
	}
	reg, ok := scheme.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("document: unknown scheme %q (registered: %v)", name, scheme.Names())
	}
	s, err := reg.Build(doc)
	if err != nil {
		return nil, err
	}
	d.sreg = reg
	d.gs = s
	root := doc
	if doc.Kind == xmltree.Document {
		root = doc.DocumentElement()
	}
	if root != nil {
		root.Walk(func(x *xmltree.Node) bool {
			d.nodeCount++
			d.depthSum += x.Depth()
			return true
		})
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d, d.publishGenericLocked(d.nodeCount, d.depthSum)
}

// publishGenericLocked installs the next epoch in generic-scheme mode: the
// master is fully cloned and the clone re-numbered through the registry
// constructor, so the snapshot's scheme, index and planner are built over an
// immutable tree the writer never touches again. There is no structural
// sharing with the previous epoch — the trade documented in Options.Scheme.
//
// nodes and depths are the counter values the new epoch should carry; they
// are committed to d.nodeCount/d.depthSum only after the epoch is installed,
// so a failed publication (the registry constructor rejecting the new tree)
// leaves the document's statistics describing the still-current epoch.
// Callers hold d.mu.
func (d *Document) publishGenericLocked(nodes, depths int) error {
	var start time.Time
	if d.dm != nil {
		start = time.Now()
	}
	tree, _ := d.master.CloneWithMap()
	s, err := d.sreg.Build(tree)
	if err != nil {
		return err
	}
	d.epoch++
	planner := query.New(tree, s)
	planner.SetExecutor(d.exec)
	planner.SetObserver(d.reg)
	d.cur.Store(&Snapshot{
		epoch:      d.epoch,
		tree:       tree,
		s:          s,
		schemeName: d.schemeName,
		planner:    planner,
		nodes:      nodes,
	})
	d.nodeCount, d.depthSum = nodes, depths
	d.noteEpochLocked(true, index.DeltaStats{}, time.Since(start))
	return nil
}

// publishLocked installs the next epoch after a successful update. With an
// area-confined delta it copies only the dirty area and its root spine,
// sharing everything else with the previous epoch; a full-rebuild delta
// (overflow healing) falls back to a full clone. nodes and depths are the
// counter values the new epoch should carry (see publishGenericLocked).
// Callers hold d.mu.
func (d *Document) publishLocked(delta *core.Delta, nodes, depths int) error {
	prev := d.cur.Load()
	if prev == nil || delta == nil || delta.Full {
		return d.publishFullLocked(nodes, depths)
	}
	var start time.Time
	if d.dm != nil {
		start = time.Now()
	}
	snap, st, err := d.assembleDeltaLocked(prev, delta, nodes, depths)
	if err != nil {
		// Incremental assembly fails only on an internal invariant
		// violation; a full publication always recovers a consistent epoch.
		return d.publishFullLocked(nodes, depths)
	}
	d.epoch++
	snap.epoch = d.epoch
	d.cur.Store(snap)
	d.nodeCount, d.depthSum = nodes, depths
	// In out-of-core mode the payload table follows the delta: the new
	// epoch's index already shares paged lists for untouched names
	// (ApplyDelta re-encodes touched ones resident), and the node rows move
	// with their relabels. Applied after the epoch is installed — the store
	// serves the latest epoch.
	d.maintainPayloadsLocked(delta)
	d.noteEpochLocked(false, st, time.Since(start))
	return nil
}

// publishBatchLocked installs ONE epoch covering a whole batch of applied
// updates: the per-mutation deltas are merged into the union of their
// update scopes (core.MergeDeltas) and a single incremental assembly —
// one CloneAlong, one CloneDelta, one index patch, one guide swap — covers
// every mutation. guide is the batch's eagerly folded DataGuide (nil when
// a fold reported an inconsistency; assembly then rebuilds it from the
// master). A batch containing any full-rebuild delta falls back to a full
// clone, exactly like the single-mutation path. Callers hold d.mu.
func (d *Document) publishBatchLocked(prev *Snapshot, deltas []*core.Delta, guide *dataguide.Guide, nodes, depths int) error {
	merged := core.MergeDeltas(deltas)
	if prev == nil || merged == nil || merged.Full {
		return d.publishFullLocked(nodes, depths)
	}
	var start time.Time
	if d.dm != nil {
		start = time.Now()
	}
	snap, st, err := d.assembleBatchLocked(prev, deltas, merged, guide, nodes, depths)
	if err != nil {
		// Incremental assembly fails only on an internal invariant
		// violation; a full publication always recovers a consistent epoch.
		return d.publishFullLocked(nodes, depths)
	}
	d.epoch++
	snap.epoch = d.epoch
	d.cur.Store(snap)
	d.nodeCount, d.depthSum = nodes, depths
	// The payload table replays the batch's deltas in application order:
	// each delta deletes dropped/old-key rows before writing new bindings,
	// so relabel chains across batch members resolve to the final keys.
	for _, delta := range deltas {
		d.maintainPayloadsLocked(delta)
	}
	d.noteEpochLocked(false, st, time.Since(start))
	return nil
}

// assembleBatchLocked is assembleDeltaLocked over a merged batch scope:
// tree and numbering derive from the merged delta, the index patch and the
// master→epoch bookkeeping from the per-mutation deltas. Callers hold d.mu.
func (d *Document) assembleBatchLocked(prev *Snapshot, deltas []*core.Delta, merged *core.Delta, guide *dataguide.Guide, nodes, depths int) (*Snapshot, index.DeltaStats, error) {
	copySet := d.num.CopySet(merged)
	tree, copies, err := d.master.CloneAlong(copySet, d.m2e)
	if err != nil {
		return nil, index.DeltaStats{}, err
	}
	num, err := d.num.CloneDelta(prev.num, merged, copies, d.m2e)
	if err != nil {
		return nil, index.DeltaStats{}, err
	}
	ix, st, err := d.applyIndexBatch(prev, num, deltas)
	if err != nil {
		return nil, st, err
	}
	if guide == nil {
		// A fold inconsistency was detected mid-batch; the guide holds label
		// paths and counts only, so rebuilding from the master is safe.
		guide = dataguide.Build(d.master)
	}
	// Commit the master→epoch mapping only once every component assembled.
	for xm, xc := range copies {
		d.m2e[xm] = xc
	}
	for _, delta := range deltas {
		if delta.Removed != nil {
			delta.Removed.WalkFull(func(x *xmltree.Node) bool {
				delete(d.m2e, x)
				return true
			})
		}
	}
	planner := query.NewWithState(tree, num, ix, guide, nodes, depths)
	planner.SetExecutor(d.exec)
	planner.SetObserver(d.reg)
	d.wireIOStats(planner)
	return &Snapshot{
		tree:       tree,
		num:        num,
		s:          num,
		schemeName: "ruid",
		planner:    planner,
		nodes:      nodes,
	}, st, nil
}

// applyIndexBatch composes the batch's per-mutation deltas into one set of
// per-name posting edits against prev's index. Identifiers may be relabeled
// several times inside one batch; the index only needs the ENDPOINTS of
// each chain — a node's first pre-batch identifier and its final one (read
// off the post-batch master numbering). Three cases fold out:
//
//   - pre-existing node, still present: relabel firstOld → final (dropped
//     when they coincide — the chain returned to its origin);
//   - pre-existing node, gone: remove firstOld;
//   - node inserted by this batch: only its final identifier is inserted,
//     and only if it survived the batch (a batch-internal insert-then-
//     delete leaves no trace — its intermediate identifiers never existed
//     in any published posting list).
//
// Drops of batch-inserted nodes can surface identifiers prev never held
// (the node was detached before publication); their removal entries filter
// nothing and are harmless.
func (d *Document) applyIndexBatch(prev *Snapshot, num *core.Numbering, deltas []*core.Delta) (*index.NameIndex, index.DeltaStats, error) {
	if len(deltas) == 1 {
		return d.applyIndexDelta(prev, num, deltas[0])
	}
	// Elements inserted by this batch and still attached: their relabels
	// and drops are batch-internal, not prev-epoch edits.
	insertedNodes := make(map[*xmltree.Node]bool)
	for _, delta := range deltas {
		if delta.Inserted != nil {
			delta.Inserted.Walk(func(x *xmltree.Node) bool {
				if x.Kind == xmltree.Element {
					insertedNodes[x] = true
				}
				return true
			})
		}
	}
	// First pre-batch identifier of every pre-existing element the batch
	// touched, in application order.
	orig := make(map[*xmltree.Node]core.ID)
	for _, delta := range deltas {
		for _, r := range delta.Relabels {
			if r.Node.Kind != xmltree.Element || insertedNodes[r.Node] {
				continue
			}
			if _, seen := orig[r.Node]; !seen {
				orig[r.Node] = r.Old
			}
		}
		for _, p := range delta.Dropped {
			if p.Node.Kind != xmltree.Element || insertedNodes[p.Node] {
				continue
			}
			if _, seen := orig[p.Node]; !seen {
				orig[p.Node] = p.ID
			}
		}
	}
	relabeled := make(map[string]map[core.ID]core.ID)
	removed := make(map[string]map[core.ID]bool)
	for x, old := range orig {
		if cur, ok := d.num.RUID(x); ok {
			if cur != old {
				m := relabeled[x.Name]
				if m == nil {
					m = make(map[core.ID]core.ID)
					relabeled[x.Name] = m
				}
				m[old] = cur
			}
		} else {
			m := removed[x.Name]
			if m == nil {
				m = make(map[core.ID]bool)
				removed[x.Name] = m
			}
			m[old] = true
		}
	}
	inserted := make(map[string][]core.ID)
	for x := range insertedNodes {
		if id, ok := d.num.RUID(x); ok {
			inserted[x.Name] = append(inserted[x.Name], id)
		}
	}
	return prev.Index().ApplyDeltaStats(num, relabeled, removed, inserted)
}

// publishFullLocked clones the master tree, re-points a copy of the
// numbering at the clone and atomically installs the bundle as the next
// epoch. Counter commit follows the publishGenericLocked rule. Callers
// hold d.mu.
func (d *Document) publishFullLocked(nodes, depths int) error {
	var start time.Time
	if d.dm != nil {
		start = time.Now()
	}
	tree, mapping := d.master.CloneWithMap()
	num, err := d.num.CloneFor(tree, mapping)
	if err != nil {
		return err
	}
	d.m2e = mapping
	planner := query.New(tree, num)
	planner.SetExecutor(d.exec)
	planner.SetObserver(d.reg)
	snap := &Snapshot{
		tree:       tree,
		num:        num,
		s:          num,
		schemeName: "ruid",
		planner:    planner,
		nodes:      nodes,
	}
	if d.poolPages > 0 {
		// Out-of-core mode: replace the freshly built resident snapshot with
		// its paged form (block bytes and payloads in a new DocStore) before
		// it becomes visible, so readers never see a half-paged epoch.
		if err := d.pageOutSnapshot(snap, depths); err != nil {
			return err
		}
	}
	d.epoch++
	snap.epoch = d.epoch
	d.cur.Store(snap)
	d.nodeCount, d.depthSum = nodes, depths
	d.noteEpochLocked(true, index.DeltaStats{}, time.Since(start))
	return nil
}

// assembleDeltaLocked builds the next epoch incrementally from the
// previous one and the update's delta. nodes and depths are the planner
// statistics of the epoch being assembled, passed explicitly because the
// document's own counters are not committed until the epoch is installed.
// Callers hold d.mu.
func (d *Document) assembleDeltaLocked(prev *Snapshot, delta *core.Delta, nodes, depths int) (*Snapshot, index.DeltaStats, error) {
	copySet := d.num.CopySet(delta)
	tree, copies, err := d.master.CloneAlong(copySet, d.m2e)
	if err != nil {
		return nil, index.DeltaStats{}, err
	}
	num, err := d.num.CloneDelta(prev.num, delta, copies, d.m2e)
	if err != nil {
		return nil, index.DeltaStats{}, err
	}
	ix, st, err := d.applyIndexDelta(prev, num, delta)
	if err != nil {
		return nil, st, err
	}
	guide := d.applyGuideDelta(prev, delta)
	// Commit the master→epoch mapping only once every component assembled.
	for xm, xc := range copies {
		d.m2e[xm] = xc
	}
	if delta.Removed != nil {
		delta.Removed.WalkFull(func(x *xmltree.Node) bool {
			delete(d.m2e, x)
			return true
		})
	}
	planner := query.NewWithState(tree, num, ix, guide, nodes, depths)
	planner.SetExecutor(d.exec)
	planner.SetObserver(d.reg)
	d.wireIOStats(planner)
	return &Snapshot{
		tree:       tree,
		num:        num,
		s:          num,
		schemeName: "ruid",
		planner:    planner,
		nodes:      nodes,
	}, st, nil
}

// applyIndexDelta translates the update's delta into per-name posting
// edits and derives the next epoch's index from the previous one.
func (d *Document) applyIndexDelta(prev *Snapshot, num *core.Numbering, delta *core.Delta) (*index.NameIndex, index.DeltaStats, error) {
	relabeled := make(map[string]map[core.ID]core.ID)
	for _, r := range delta.Relabels {
		if r.Node.Kind != xmltree.Element {
			continue
		}
		m := relabeled[r.Node.Name]
		if m == nil {
			m = make(map[core.ID]core.ID)
			relabeled[r.Node.Name] = m
		}
		m[r.Old] = r.New
	}
	removed := make(map[string]map[core.ID]bool)
	for _, p := range delta.Dropped {
		if p.Node.Kind != xmltree.Element {
			continue
		}
		m := removed[p.Node.Name]
		if m == nil {
			m = make(map[core.ID]bool)
			removed[p.Node.Name] = m
		}
		m[p.ID] = true
	}
	inserted := make(map[string][]core.ID)
	if delta.Inserted != nil {
		delta.Inserted.Walk(func(x *xmltree.Node) bool {
			if x.Kind == xmltree.Element {
				if id, ok := d.num.RUID(x); ok {
					inserted[x.Name] = append(inserted[x.Name], id)
				}
			}
			return true
		})
	}
	return prev.Index().ApplyDeltaStats(num, relabeled, removed, inserted)
}

// applyGuideDelta derives the next epoch's DataGuide from the previous
// one and the single inserted or removed subtree.
func (d *Document) applyGuideDelta(prev *Snapshot, delta *core.Delta) *dataguide.Guide {
	sub, sign := delta.Inserted, +1
	if sub == nil {
		sub, sign = delta.Removed, -1
	}
	if sub == nil {
		return prev.Guide()
	}
	var prefix []string
	for p := delta.Parent; p != nil && p.Kind == xmltree.Element; p = p.Parent {
		prefix = append(prefix, p.Name)
	}
	for i, j := 0, len(prefix)-1; i < j; i, j = i+1, j-1 {
		prefix[i], prefix[j] = prefix[j], prefix[i]
	}
	if g := prev.Guide().WithUpdate(prefix, sub, sign); g != nil {
		return g
	}
	// Inconsistency between guide and delta: rebuild from the master (the
	// guide holds label paths and counts only, no node pointers, so it is
	// safe to share with the epoch).
	return dataguide.Build(d.master)
}

// Snapshot pins the current epoch. The returned snapshot never changes;
// queries on it are wait-free with respect to writers.
func (d *Document) Snapshot() *Snapshot { return d.cur.Load() }

// Query plans and executes an XPath query against the current epoch,
// returning the result node-set in document order (nodes belong to that
// epoch's immutable tree) and the plan that produced it.
func (d *Document) Query(q string) ([]*xmltree.Node, query.Plan, error) {
	return d.Snapshot().Query(q)
}

// Insert attaches child (possibly a whole subtree) as the pos-th child of
// the first element matched by parentPath (an XPath location path,
// evaluated in document order against the latest state) and publishes a
// new epoch. It returns the paper's §3.2 relabeling statistics. The
// Document takes ownership of child on success; a failed insert leaves the
// document unchanged (no epoch is published) and ownership of the detached
// child with the caller.
func (d *Document) Insert(parentPath string, pos int, child *xmltree.Node) (scheme.UpdateStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readonly {
		return scheme.UpdateStats{}, ErrColdDocument
	}
	parent, err := d.findOneLocked(parentPath)
	if err != nil {
		return scheme.UpdateStats{}, err
	}
	if d.num == nil {
		upd, ok := d.gs.(scheme.Updatable)
		if !ok {
			return scheme.UpdateStats{}, fmt.Errorf("%w: scheme %q", ErrReadOnlyScheme, d.schemeName)
		}
		st, err := upd.InsertChild(parent, pos, child)
		if err != nil {
			return st, err
		}
		// The counters commit inside the publish call, only after the new
		// epoch is installed: a publication failure must leave the document's
		// statistics describing the epoch readers still see.
		count, depths := subtreeStats(child, parent.Depth()+1)
		return st, d.publishGenericLocked(d.nodeCount+count, d.depthSum+depths)
	}
	st, delta, err := d.num.InsertChildDelta(parent, pos, child)
	if err != nil {
		return st, err
	}
	count, depths := subtreeStats(child, parent.Depth()+1)
	return st, d.publishLocked(delta, d.nodeCount+count, d.depthSum+depths)
}

// Delete removes (cascading) the pos-th child of the first element matched
// by parentPath and publishes a new epoch. A failed delete leaves the
// document unchanged and publishes nothing.
func (d *Document) Delete(parentPath string, pos int) (scheme.UpdateStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.readonly {
		return scheme.UpdateStats{}, ErrColdDocument
	}
	parent, err := d.findOneLocked(parentPath)
	if err != nil {
		return scheme.UpdateStats{}, err
	}
	if d.num == nil {
		upd, ok := d.gs.(scheme.Updatable)
		if !ok {
			return scheme.UpdateStats{}, fmt.Errorf("%w: scheme %q", ErrReadOnlyScheme, d.schemeName)
		}
		if pos < 0 || pos >= len(parent.Children) {
			return scheme.UpdateStats{}, fmt.Errorf("document: delete position %d out of range", pos)
		}
		removed := parent.Children[pos]
		st, err := upd.DeleteChild(parent, pos)
		if err != nil {
			return st, err
		}
		count, depths := subtreeStats(removed, parent.Depth()+1)
		return st, d.publishGenericLocked(d.nodeCount-count, d.depthSum-depths)
	}
	st, delta, err := d.num.DeleteChildDelta(parent, pos)
	if err != nil {
		return st, err
	}
	count, depths := subtreeStats(delta.Removed, parent.Depth()+1)
	return st, d.publishLocked(delta, d.nodeCount-count, d.depthSum-depths)
}

// subtreeStats counts the non-attribute nodes of the subtree rooted at x
// and sums their depths, with x itself at the given depth.
func subtreeStats(x *xmltree.Node, depth int) (count, depths int) {
	count, depths = 1, depth
	for _, c := range x.Children {
		cc, cd := subtreeStats(c, depth+1)
		count += cc
		depths += cd
	}
	return count, depths
}

// findOneLocked resolves a writer's target path against the master tree
// using pointer navigation (the master numbering may be mid-flight between
// epochs, so identifiers are not used here).
func (d *Document) findOneLocked(path string) (*xmltree.Node, error) {
	engine := xpath.NewEngine(d.master, xpath.PointerNavigator{})
	res, err := engine.Query(path)
	if err != nil {
		return nil, err
	}
	for _, n := range res {
		if n.Kind == xmltree.Element {
			return n, nil
		}
	}
	return nil, fmt.Errorf("document: no element matches %q", path)
}

// ErrReadOnlyScheme reports a structural update against a document whose
// scheme does not declare the Update capability (e.g. the compact ancestry
// labels, which trade updatability for label size). Test with errors.Is.
var ErrReadOnlyScheme = errors.New("document: scheme is read-only")

// Stats summarizes the current epoch. Areas and Kappa describe the ruid
// area partition and are zero under any other scheme.
type Stats struct {
	Epoch  int    // epochs published so far (1 = the initial one)
	Scheme string // numbering scheme name
	Nodes  int    // numbered nodes
	Areas  int    // UID-local areas (rows of K); ruid only
	Kappa  int64  // frame fan-out κ; ruid only
	Names  int    // distinct indexed element names
}

// Stats returns a summary of the current epoch.
func (d *Document) Stats() Stats {
	s := d.Snapshot()
	st := Stats{
		Epoch:  int(s.epoch),
		Scheme: s.schemeName,
		Names:  len(s.Index().Names()),
	}
	// Both scheme families answer Nodes from the snapshot's maintained count
	// (non-attribute nodes from the root element down, the same population
	// subtreeStats tracks across updates) — no per-call tree walk. The
	// accounting consistency is pinned by TestGenericStatsMatchRecount.
	st.Nodes = s.nodes
	if s.num != nil {
		st.Areas = s.num.AreaCount()
		st.Kappa = s.num.Kappa()
	}
	return st
}

// Epoch returns the snapshot's epoch number (monotonically increasing per
// Document, starting at 1).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Tree returns the snapshot's immutable document tree. Callers must not
// mutate it (it is shared by every reader of this epoch, and its untouched
// subtrees by later epochs). Parent pointers inside subtrees shared with
// an earlier epoch point into that earlier epoch; navigate upward through
// the numbering instead.
func (s *Snapshot) Tree() *xmltree.Node { return s.tree }

// Numbering returns the snapshot's ruid numbering, or nil when the document
// was opened with a non-ruid scheme (use Scheme for the general interface).
func (s *Snapshot) Numbering() *core.Numbering { return s.num }

// Scheme returns the snapshot's numbering through the scheme interface,
// whatever concrete scheme the document was opened with.
func (s *Snapshot) Scheme() scheme.Scheme { return s.s }

// SchemeName returns the resolved name of the snapshot's numbering scheme
// ("auto" resolves at Open; this reports the picked scheme).
func (s *Snapshot) SchemeName() string { return s.schemeName }

// SchemeName returns the resolved name of the document's numbering scheme.
func (d *Document) SchemeName() string { return d.schemeName }

// Index returns the snapshot's element-name index.
func (s *Snapshot) Index() *index.NameIndex { return s.planner.Index() }

// Guide returns the snapshot's DataGuide structural summary.
func (s *Snapshot) Guide() *dataguide.Guide { return s.planner.Guide() }

// Query plans and executes an XPath query against this epoch, returning
// the result node-set in document order and the plan used. Safe for
// concurrent use.
func (s *Snapshot) Query(q string) ([]*xmltree.Node, query.Plan, error) {
	return s.planner.Run(q)
}

// QueryBudget is Query under the resource limits lim and the deadline (or
// cancellation) of ctx. A query that exceeds a bound terminates early
// inside the join kernels and returns the matching sentinel —
// budget.ErrPostingsBudget, budget.ErrResultBudget, or the context's own
// error — with a nil node-set. The server's per-request enforcement point.
func (s *Snapshot) QueryBudget(ctx context.Context, q string, lim budget.Limits) ([]*xmltree.Node, query.Plan, error) {
	return s.planner.RunBudget(ctx, q, lim)
}

// QueryMetered is QueryBudget over a caller-owned meter, optionally traced:
// the caller inspects the meter afterwards for postings/result consumption.
// A nil meter runs unbudgeted; a nil trace untraced.
func (s *Snapshot) QueryMetered(q string, tr *obs.Trace, m *budget.Meter) ([]*xmltree.Node, query.Plan, error) {
	return s.planner.RunMetered(q, tr, m)
}

// Plan parses the query and reports the strategy the planner would choose,
// without executing it.
func (s *Snapshot) Plan(q string) (query.Plan, error) {
	return s.planner.Plan(q)
}
