package core

import (
	"fmt"
	"sort"

	"repro/internal/xmltree"
)

// CloneFor re-points a copy of the numbering at a cloned document tree:
// doc is the clone of the numbered document and mapping maps every
// original node (attributes included) to its clone, as produced by
// xmltree.Node.CloneWithMap.
//
// The clone carries exactly the same identifiers, κ and table K as the
// original — including fan-outs enlarged by past updates — so identifiers
// remain stable across snapshot epochs of the document facade. The clone
// is produced in epoch mode (see Numbering): the table K becomes a slice
// sorted by global index, node→ID lookups read the NodeNum stamp this
// function burns into every numbered clone node, and ID→node lookups
// resolve through the copied per-area slot maps. The clone shares no
// mutable state with the original; the per-area slot lists are pre-sorted
// so reads on the clone are free of lazy initialization (safe for
// concurrent readers). Epoch clones reject structural updates with
// ErrImmutable.
func (n *Numbering) CloneFor(doc *xmltree.Node, mapping map[*xmltree.Node]*xmltree.Node) (*Numbering, error) {
	if n.epochMode() {
		return nil, ErrImmutable
	}
	remap := func(x *xmltree.Node) (*xmltree.Node, error) {
		c, ok := mapping[x]
		if !ok {
			return nil, fmt.Errorf("core: clone mapping misses node %s", x.Path())
		}
		return c, nil
	}
	croot, err := remap(n.root)
	if err != nil {
		return nil, err
	}
	c := &Numbering{
		doc:        doc,
		root:       croot,
		opts:       n.opts,
		kappa:      n.kappa,
		localLimit: n.localLimit,
		size:       len(n.ids),
	}
	sorted := make([]*area, 0, len(n.areas))
	for _, a := range n.areas {
		ar, err := remap(a.root)
		if err != nil {
			return nil, err
		}
		ca := &area{
			global:       a.global,
			root:         ar,
			rootLocal:    a.rootLocal,
			fanout:       a.fanout,
			parentGlobal: a.parentGlobal,
			rootByLocal:  make(map[int64]int64, len(a.rootByLocal)),
			locals:       make(map[int64]*xmltree.Node, len(a.locals)),
		}
		for l, g2 := range a.rootByLocal {
			ca.rootByLocal[l] = g2
		}
		for l, x := range a.locals {
			cx, err := remap(x)
			if err != nil {
				return nil, err
			}
			ca.locals[l] = cx
		}
		a.ensureSorted()
		ca.sortedLocals = append([]int64(nil), a.sortedLocals...)
		ca.sortedDirty = false
		sorted = append(sorted, ca)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].global < sorted[j].global })
	c.areaIdx = newAreaIndex(sorted)
	for x, id := range n.ids {
		cx, err := remap(x)
		if err != nil {
			return nil, err
		}
		cx.Num = xmltree.NodeNum{G: id.Global, L: id.Local, R: id.Root}
	}
	return c, nil
}

// CopySet returns the set of master nodes an incremental epoch publication
// must copy for the update described by d: the members of every dirty
// (re-enumerated) area — boundary leaves excluded unless their K row
// moved, since a moved row changes the leaf's identifier and its epoch
// copy needs a fresh stamp — plus the spine of ancestors from each dirty
// area root up to and including the document node, whose child lists must
// be re-pointed. Attributes of copied elements are copied implicitly by
// xmltree.CloneAlong and need not appear in the set.
func (n *Numbering) CopySet(d *Delta) map[*xmltree.Node]bool {
	moved := make(map[int64]bool, len(d.RowMoved))
	for _, g := range d.RowMoved {
		moved[g] = true
	}
	set := make(map[*xmltree.Node]bool)
	for _, g := range d.Dirty {
		a := n.areas[g]
		if a == nil {
			continue
		}
		for _, x := range a.locals {
			if x != a.root && n.areaRoots[x] {
				if id, ok := n.ids[x]; ok && moved[id.Global] {
					set[x] = true
				}
				continue
			}
			set[x] = true
		}
		for p := a.root.Parent; p != nil; p = p.Parent {
			set[p] = true
		}
	}
	return set
}

// CloneDelta builds the next epoch's numbering incrementally: only the
// dirty areas' slot maps are rebuilt; areas the copied spine crosses get
// rebound copies whose slots point at the fresh nodes; areas whose K row
// moved get patched row copies sharing their slot maps; every other area
// struct — and every untouched subtree — is shared with the previous
// epoch outright.
//
// The receiver is the master numbering after a successful update, d its
// Delta, prev the previous epoch's numbering (epoch mode), copies the
// master→fresh map returned by xmltree.CloneAlong, and shared the
// master→previous-epoch map for everything else. Fresh nodes get their
// NodeNum stamp here, from the master's authoritative identifiers.
func (n *Numbering) CloneDelta(prev *Numbering, d *Delta, copies, shared map[*xmltree.Node]*xmltree.Node) (*Numbering, error) {
	if !prev.epochMode() {
		return nil, fmt.Errorf("core: CloneDelta requires an epoch-mode previous numbering")
	}
	if n.epochMode() {
		return nil, ErrImmutable
	}
	mapNode := func(x *xmltree.Node) (*xmltree.Node, error) {
		if c, ok := copies[x]; ok {
			return c, nil
		}
		if s, ok := shared[x]; ok {
			return s, nil
		}
		return nil, fmt.Errorf("core: epoch mapping misses node %s", x.Path())
	}
	cdoc, err := mapNode(n.doc)
	if err != nil {
		return nil, err
	}
	croot, err := mapNode(n.root)
	if err != nil {
		return nil, err
	}
	c := &Numbering{
		doc:        cdoc,
		root:       croot,
		opts:       n.opts,
		kappa:      n.kappa,
		localLimit: n.localLimit,
	}

	dirty := make(map[int64]bool, len(d.Dirty))
	patched := make(map[int64]*area) // next-epoch replacements by global index
	owned := make(map[int64]bool)    // patched areas whose maps are private (writable)

	// Dirty areas: rebuild slot maps from the master's post-update state,
	// re-pointed at the next epoch's nodes.
	for _, g := range d.Dirty {
		dirty[g] = true
		ma := n.areas[g]
		if ma == nil {
			return nil, fmt.Errorf("core: delta names unknown area %d", g)
		}
		ar, err := mapNode(ma.root)
		if err != nil {
			return nil, err
		}
		ma.ensureSorted()
		na := &area{
			global:       g,
			root:         ar,
			rootLocal:    ma.rootLocal,
			fanout:       ma.fanout,
			parentGlobal: ma.parentGlobal,
			rootByLocal:  make(map[int64]int64, len(ma.rootByLocal)),
			locals:       make(map[int64]*xmltree.Node, len(ma.locals)),
			sortedLocals: append([]int64(nil), ma.sortedLocals...),
		}
		for l, g2 := range ma.rootByLocal {
			na.rootByLocal[l] = g2
		}
		for l, x := range ma.locals {
			cx, err := mapNode(x)
			if err != nil {
				return nil, err
			}
			na.locals[l] = cx
		}
		patched[g] = na
		owned[g] = true
	}

	// Row-moved child areas: same interior, new root slot. Start from a
	// shallow copy sharing the previous epoch's maps; the rebind pass below
	// splits the maps copy-on-write before its first write.
	for _, g := range d.RowMoved {
		if dirty[g] || patched[g] != nil {
			continue
		}
		pa, ok := prev.krow(g)
		if !ok {
			return nil, fmt.Errorf("core: previous epoch misses area %d", g)
		}
		ma := n.areas[g]
		if ma == nil {
			return nil, fmt.Errorf("core: delta names unknown area %d", g)
		}
		na := *pa
		na.rootLocal = ma.rootLocal
		patched[g] = &na
	}

	// rebind returns a writable next-epoch copy of area g, splitting shared
	// maps copy-on-write on first write.
	rebind := func(g int64) (*area, error) {
		a, ok := patched[g]
		if !ok {
			pa, found := prev.krow(g)
			if !found {
				return nil, fmt.Errorf("core: previous epoch misses area %d", g)
			}
			na := *pa
			a = &na
			patched[g] = a
		}
		if !owned[g] {
			nl := make(map[int64]*xmltree.Node, len(a.locals))
			for l, v := range a.locals {
				nl[l] = v
			}
			a.locals = nl
			owned[g] = true
		}
		return a, nil
	}

	// Stamp every fresh copy and re-point at it each slot that references
	// the copied node from an area that was not rebuilt above.
	for xm, xc := range copies {
		id, ok := n.ids[xm]
		if !ok {
			continue // document node, or attributes outside the numbering
		}
		xc.Num = xmltree.NodeNum{G: id.Global, L: id.Local, R: id.Root}
		if id.Root {
			if !dirty[id.Global] {
				a, err := rebind(id.Global)
				if err != nil {
					return nil, err
				}
				a.root = xc
				a.locals[1] = xc
			}
			if pg := n.areas[id.Global].parentGlobal; pg != 0 && !dirty[pg] {
				a, err := rebind(pg)
				if err != nil {
					return nil, err
				}
				a.locals[id.Local] = xc
			}
		} else if !dirty[id.Global] {
			a, err := rebind(id.Global)
			if err != nil {
				return nil, err
			}
			a.locals[id.Local] = xc
		}
	}

	// Merge into the chunked area index. Updates never create areas outside
	// renumberAll (which publishes via the full CloneFor path), so the
	// global-index set can only shrink here. withPatches shares every chunk
	// holding no patched or deleted row with the previous epoch, so this
	// step is proportional to the number of TOUCHED areas plus the chunk
	// directory — not the total area count.
	idx, err := prev.areaIdx.withPatches(patched, d.DeletedAreas)
	if err != nil {
		return nil, err
	}
	c.areaIdx = idx
	c.size = prev.size + d.InsertedCount - len(d.Dropped)
	return c, nil
}
