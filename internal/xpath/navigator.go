package xpath

import (
	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// PointerNavigator provides the axes by direct pointer navigation over the
// xmltree ground truth. It is the reference the scheme-driven navigator is
// validated against, and the "scan the tree" baseline in the benchmarks.
type PointerNavigator struct{}

// Name implements Navigator.
func (PointerNavigator) Name() string { return "pointer" }

// Children implements Navigator.
func (PointerNavigator) Children(n *xmltree.Node) []*xmltree.Node { return n.Children }

// Parent implements Navigator; the synthetic Document node does not count.
func (PointerNavigator) Parent(n *xmltree.Node) (*xmltree.Node, bool) {
	if n.Parent == nil || n.Parent.Kind == xmltree.Document {
		return nil, false
	}
	return n.Parent, true
}

// Descendants implements Navigator.
func (PointerNavigator) Descendants(n *xmltree.Node) []*xmltree.Node {
	return xmltree.Descendants(n)
}

// Ancestors implements Navigator.
func (PointerNavigator) Ancestors(n *xmltree.Node) []*xmltree.Node {
	var out []*xmltree.Node
	for p := n.Parent; p != nil && p.Kind != xmltree.Document; p = p.Parent {
		out = append(out, p)
	}
	return out
}

// FollowingSiblings implements Navigator.
func (PointerNavigator) FollowingSiblings(n *xmltree.Node) []*xmltree.Node {
	return xmltree.FollowingSiblings(n)
}

// PrecedingSiblings implements Navigator.
func (PointerNavigator) PrecedingSiblings(n *xmltree.Node) []*xmltree.Node {
	return xmltree.PrecedingSiblings(n)
}

// Following implements Navigator.
func (PointerNavigator) Following(n *xmltree.Node) []*xmltree.Node {
	return xmltree.Following(n)
}

// Preceding implements Navigator.
func (PointerNavigator) Preceding(n *xmltree.Node) []*xmltree.Node {
	return xmltree.Preceding(n)
}

// SchemeNavigator adapts a numbering scheme's identifier-arithmetic axes
// (scheme.AxisScheme) to the Navigator interface: every axis request maps
// the node to its identifier, generates the axis by arithmetic plus index
// range scans, and resolves the resulting identifiers back to nodes.
type SchemeNavigator struct {
	S scheme.AxisScheme
}

// Name implements Navigator.
func (v SchemeNavigator) Name() string { return v.S.Name() }

func (v SchemeNavigator) resolve(ids []scheme.ID) []*xmltree.Node {
	out := make([]*xmltree.Node, 0, len(ids))
	for _, id := range ids {
		if n, ok := v.S.NodeOf(id); ok {
			out = append(out, n)
		}
	}
	return out
}

func (v SchemeNavigator) idOf(n *xmltree.Node) (scheme.ID, bool) { return v.S.IDOf(n) }

// Children implements Navigator.
func (v SchemeNavigator) Children(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.Children(id))
}

// Parent implements Navigator.
func (v SchemeNavigator) Parent(n *xmltree.Node) (*xmltree.Node, bool) {
	id, ok := v.idOf(n)
	if !ok {
		return nil, false
	}
	pid, ok := v.S.Parent(id)
	if !ok {
		return nil, false
	}
	return v.S.NodeOf(pid)
}

// Descendants implements Navigator.
func (v SchemeNavigator) Descendants(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.Descendants(id))
}

// Ancestors implements Navigator.
func (v SchemeNavigator) Ancestors(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.Ancestors(id))
}

// FollowingSiblings implements Navigator.
func (v SchemeNavigator) FollowingSiblings(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.FollowingSiblings(id))
}

// PrecedingSiblings implements Navigator.
func (v SchemeNavigator) PrecedingSiblings(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.PrecedingSiblings(id))
}

// Following implements Navigator.
func (v SchemeNavigator) Following(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.Following(id))
}

// Preceding implements Navigator.
func (v SchemeNavigator) Preceding(n *xmltree.Node) []*xmltree.Node {
	id, ok := v.idOf(n)
	if !ok {
		return nil
	}
	return v.resolve(v.S.Preceding(id))
}
