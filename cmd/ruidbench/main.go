// Command ruidbench regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md): run it with no arguments for the full
// suite, or name experiment ids to run a subset.
//
// Usage:
//
//	ruidbench [-list] [-json] [-io-json [-io-scale N] [-io-samples N]] [E1 E2 E3 ...]
//
// With -json the command instead measures the identifier hot paths (joins,
// RParent, axis generation; interface path vs concrete fast path) and
// prints machine-readable results — the format committed as
// BENCH_baseline.json. With -io-json it runs only the out-of-core I/O
// measurement (experiment E17) at a caller-chosen scale and prints the
// io/* rows — the mode the CI cold-query smoke asserts against.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.Bool("json", false, "run the hot-path microbenchmarks and print JSON")
	ioJSON := flag.Bool("io-json", false, "run only the out-of-core I/O measurement (E17) and print its io/* rows as JSON")
	ioScale := flag.Int("io-scale", defaultIONodes, "approximate element count for -io-json")
	ioSamples := flag.Int("io-samples", defaultIOSamples, "sampled ancestor chains for -io-json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ruidbench [-list] [-json] [-io-json [-io-scale N] [-io-samples N]] [experiment ids...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *ioJSON {
		if err := writeJSON(os.Stdout, ioRows(*ioScale, *ioSamples)); err != nil {
			fmt.Fprintf(os.Stderr, "ruidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if err := runMicrobench(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ruidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	experiments := workload.Experiments()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	want := map[string]bool{}
	for _, arg := range flag.Args() {
		want[strings.ToUpper(arg)] = true
	}
	ran := 0
	for _, e := range experiments {
		id := strings.ToUpper(e.ID)
		if len(want) > 0 && !want[id] && !want[strings.TrimRight(id, "ABCD")] {
			continue
		}
		if err := e.Build().Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ruidbench: %v\n", err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "ruidbench: no experiment matches %v (try -list)\n", flag.Args())
		os.Exit(2)
	}
}
