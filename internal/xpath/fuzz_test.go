package xpath

import "testing"

// FuzzParseXPath throws arbitrary strings at the location-path parser. The
// parser must either return an error or a Path whose steps survive a
// reparse of their rendering — it must never panic. The seeds cover every
// syntactic feature the grammar supports.
func FuzzParseXPath(f *testing.F) {
	seeds := []string{
		"/",
		"//a",
		"/a/b/c",
		"//a//b",
		"/a[1]/b[last()]",
		"//book[@id='b1']/title",
		"//article[year > 1995]/title",
		"//a[b][c//d]//e",
		"//author[. = 'X']/..",
		"/a/*/b",
		"//title/text()",
		"a | b | //c",
		"//open_auction[bidder][itemref]/initial",
		"/a[count(b) > 2]",
		"self::node()",
		"descendant-or-self::node()",
		"//a[",
		"]]",
		"//a[@]",
		"|/",
		"",
		"////",
		"/a[0x]",
		"//a['unterminated]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		paths, err := ParseUnion(src)
		if err != nil {
			return
		}
		// A successful parse must produce printable, self-consistent paths.
		for _, p := range paths {
			for _, s := range p.Steps {
				_ = s.String()
			}
		}
	})
}
