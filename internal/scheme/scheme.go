// Package scheme defines the common interface implemented by every
// numbering scheme in this repository (the original UID baseline, the
// preorder/postorder and extended-preorder baselines, and the paper's ruid),
// together with a conformance harness that checks any implementation against
// the pointer-tree ground truth of package xmltree.
//
// A Scheme is a numbering of one tree snapshot: it assigns each node a
// unique identifier from which structural relationships can be recovered.
// The central distinction the paper draws is between schemes that can only
// *compare* two given identifiers (pre/post) and UID-family schemes that can
// *compute* related identifiers — the parent's, the candidate children's —
// from a node's identifier alone, using only small in-memory tables.
package scheme

import (
	"repro/internal/xmltree"
)

// ID is an opaque node identifier. Implementations provide value types with
// meaningful String and Key representations.
type ID interface {
	// String renders the identifier the way the paper writes it,
	// e.g. "23" for an original UID or "(10, 9, true)" for a 2-level ruid.
	String() string
	// Key returns a byte string such that bytes.Compare on keys orders
	// identifiers first by containing area/document position group and is
	// unique per node. Keys are used as index keys by internal/storage.
	Key() []byte
}

// Scheme is a numbering of a tree snapshot.
type Scheme interface {
	// Name identifies the scheme in benchmark output ("uid", "ruid", ...).
	Name() string

	// IDOf returns the identifier assigned to a node, and false if the node
	// was not part of the numbered snapshot.
	IDOf(n *xmltree.Node) (ID, bool)

	// NodeOf resolves an identifier back to its node, and false if no node
	// carries the identifier (for UID-family schemes the identifier space
	// includes virtual nodes that resolve to nothing).
	NodeOf(id ID) (*xmltree.Node, bool)

	// Parent computes the identifier of the parent of id, and false if id
	// identifies the root. For UID-family schemes this is pure arithmetic
	// over in-memory parameters, with no access to the tree.
	Parent(id ID) (ID, bool)

	// IsAncestor reports whether anc is a proper ancestor of desc, decided
	// from the identifiers alone.
	IsAncestor(anc, desc ID) bool

	// CompareOrder compares two identifiers in document order: -1 if a
	// precedes b, +1 if a follows b, 0 if equal. An ancestor precedes its
	// descendants.
	CompareOrder(a, b ID) int
}

// AxisScheme is implemented by schemes that can generate the positional
// XPath axes of §3.5 of the paper directly from an identifier.
// All returned sets contain only identifiers of existing nodes, in document
// order except PrecedingSiblings and Ancestors, which follow the XPath
// reverse-axis convention (nearest first).
type AxisScheme interface {
	Scheme

	Ancestors(id ID) []ID
	Children(id ID) []ID
	Descendants(id ID) []ID
	FollowingSiblings(id ID) []ID
	PrecedingSiblings(id ID) []ID
	Following(id ID) []ID
	Preceding(id ID) []ID
}

// Updatable is implemented by schemes that support structural update of the
// numbered snapshot (§3.2 of the paper). The tree itself is mutated by the
// caller through xmltree; the scheme keeps its numbering in sync and reports
// how many existing identifiers had to change.
type Updatable interface {
	Scheme

	// InsertChild attaches newChild into the snapshot as the pos-th child
	// of parent (the xmltree mutation is performed by the scheme so that
	// numbering and tree cannot diverge) and returns statistics about the
	// identifier changes the insertion caused.
	InsertChild(parent *xmltree.Node, pos int, newChild *xmltree.Node) (UpdateStats, error)

	// DeleteChild removes the pos-th child of parent (cascading, per §3.2)
	// and returns statistics about the identifier changes.
	DeleteChild(parent *xmltree.Node, pos int) (UpdateStats, error)
}

// UpdateStats quantifies the renumbering scope of one structural update —
// the central metric of experiments E1 and E6.
type UpdateStats struct {
	// Relabeled is the number of pre-existing nodes whose identifier
	// changed (the inserted node itself does not count; deleted nodes do
	// not count).
	Relabeled int
	// FullRebuild reports that the whole document had to be renumbered
	// (original UID when the global fan-out k overflows).
	FullRebuild bool
	// AreaRebuilds is the number of UID-local areas that had to be
	// re-enumerated with a larger local fan-out (ruid only).
	AreaRebuilds int
}

// Add accumulates other into s.
func (s *UpdateStats) Add(other UpdateStats) {
	s.Relabeled += other.Relabeled
	if other.FullRebuild {
		s.FullRebuild = true
	}
	s.AreaRebuilds += other.AreaRebuilds
}
