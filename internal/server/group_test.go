package server

import (
	"context"
	"fmt"
	"testing"
	"time"
)

const groupSrc = `<site><regions><r1/><r2/></regions><people/></site>`

func groupServer(t *testing.T, walDir string) *Server {
	t.Helper()
	return New(Config{
		GroupCommit: GroupCommitConfig{
			Enabled:  true,
			MaxBatch: 8,
			MaxDelay: time.Millisecond,
			WALDir:   walDir,
		},
	})
}

// TestServerGroupCommitWrites: the HTTP-facing write path batches through
// the group committer; WaitVisible acks at publication, and every write is
// eventually queryable.
func TestServerGroupCommitWrites(t *testing.T) {
	s := groupServer(t, "") // no WAL: pure batching
	if _, err := s.Open("site", groupSrc); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	const n = 20
	for i := 0; i < n; i++ {
		req := WriteRequest{
			Parent:      "/site/people",
			Pos:         0,
			XML:         fmt.Sprintf("<person id=\"p%d\"/>", i),
			WaitVisible: i == n-1, // last write syncs the pipeline
		}
		if _, err := s.InsertReq(ctx, "site", req); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// The last write waited for visibility, but earlier batch members may
	// publish after it enqueued; settle the pipeline with one more synced
	// no-op round trip.
	if _, err := s.Delete(ctx, "site", "/site/regions", 0); err != nil {
		t.Fatal(err)
	}
	resp, err := s.Query(ctx, "site", QueryRequest{Query: "//person"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != n {
		t.Fatalf("queried %d persons, want %d", resp.Count, n)
	}
}

// TestServerWALRecovery: a server restart over the same WALDir replays
// every acknowledged mutation when the document is reopened from its base
// image — the crash-recovery contract the CI smoke job exercises end to
// end with a SIGKILL.
func TestServerWALRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	s1 := groupServer(t, dir)
	if _, err := s1.Open("site", groupSrc); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		req := WriteRequest{Parent: "/site/people", Pos: 0, XML: fmt.Sprintf("<person id=\"q%d\"/>", i)}
		if _, err := s1.InsertReq(ctx, "site", req); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Every InsertReq above returned ⇒ every record is durable. Simulate the
	// crash by abandoning s1 without closing its documents: the WAL file
	// stays as the crashed process left it.
	s2 := groupServer(t, dir)
	if _, err := s2.Open("site", groupSrc); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Recoveries()
	if len(recs) != 1 || recs[0].Doc != "site" {
		t.Fatalf("recoveries = %+v", recs)
	}
	if recs[0].Records != n || recs[0].Applied != n || recs[0].Skipped != 0 {
		t.Fatalf("recovery replayed %+v, want %d/%d/0", recs[0], n, n)
	}
	resp, err := s2.Query(ctx, "site", QueryRequest{Query: "//person"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Count != n {
		t.Fatalf("recovered %d persons, want %d", resp.Count, n)
	}

	// The recovered document keeps accepting (and logging) writes.
	if _, err := s2.InsertReq(ctx, "site", WriteRequest{
		Parent: "/site/people", Pos: 0, XML: "<person id=\"post\"/>", WaitVisible: true,
	}); err != nil {
		t.Fatal(err)
	}
	resp, err = s2.Query(ctx, "site", QueryRequest{Query: "//person"})
	if err != nil || resp.Count != n+1 {
		t.Fatalf("post-recovery write: count %d err %v", resp.Count, err)
	}
}
