package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestIDDeltaRoundTrip(t *testing.T) {
	ids := []ID{
		RootID,
		{Global: 1, Local: 2},
		{Global: 1, Local: 63},
		{Global: 2, Local: 1, Root: true},
		{Global: 2, Local: 5},
		{Global: 9, Local: 1, Root: true},
		{Global: 3, Local: 40},
		{Global: 1 << 40, Local: 1 << 35},
		{Global: 1, Local: 1},
	}
	var buf []byte
	prev := ID{}
	for _, id := range ids {
		buf = AppendIDDelta(buf, prev, id)
		prev = id
	}
	prev = ID{}
	off := 0
	for i, want := range ids {
		got, n, ok := DecodeIDDelta(buf[off:], prev)
		if !ok {
			t.Fatalf("entry %d: decode failed", i)
		}
		if got != want {
			t.Fatalf("entry %d: got %v want %v", i, got, want)
		}
		off += n
		prev = got
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestIDDeltaRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	prev := ID{}
	var buf []byte
	var ids []ID
	for i := 0; i < 10000; i++ {
		id := ID{
			Global: rng.Int63n(1 << 50),
			Local:  rng.Int63n(1 << 50),
			Root:   rng.Intn(4) == 0,
		}
		ids = append(ids, id)
		buf = AppendIDDelta(buf, prev, id)
		prev = id
	}
	prev = ID{}
	off := 0
	for i, want := range ids {
		got, n, ok := DecodeIDDelta(buf[off:], prev)
		if !ok || got != want {
			t.Fatalf("entry %d: got %v (ok=%v) want %v", i, got, ok, want)
		}
		off += n
		prev = got
	}
}

// The codec exists to be small: a same-area step of +1 must be 2 bytes.
func TestIDDeltaDenseSize(t *testing.T) {
	var buf []byte
	prev := ID{Global: 7, Local: 1, Root: true}
	for l := int64(2); l <= 64; l++ {
		buf = AppendIDDelta(buf, prev, ID{Global: 7, Local: l})
		prev = ID{Global: 7, Local: l}
	}
	if len(buf) > 2*63 {
		t.Fatalf("dense run encoded to %d bytes, want <= %d", len(buf), 2*63)
	}
}

func TestDecodeIDDeltaMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x80},                         // truncated first varint
		{0x02},                         // missing second varint
		{0x02, 0x80},                   // truncated second varint
		bytes.Repeat([]byte{0x80}, 11), // overlong varint
		append([]byte{0x04}, bytes.Repeat([]byte{0xff}, 10)...),
	}
	for i, b := range cases {
		if _, _, ok := DecodeIDDelta(b, RootID); ok {
			t.Fatalf("case %d: decode of malformed %x succeeded", i, b)
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round trip of %d = %d", v, got)
		}
	}
	if zigzag(0) != 0 || zigzag(-1) != 1 || zigzag(1) != 2 {
		t.Fatalf("zigzag mapping wrong: %d %d %d", zigzag(0), zigzag(-1), zigzag(1))
	}
}
