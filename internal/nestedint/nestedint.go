package nestedint

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// ID is a nested-interval identifier: the canonical continued-fraction
// rational plus its packed sibling path. The path is fully determined by
// the rational (DecodePath); it is carried alongside because it is also the
// identifier's index key and the cheap form for order comparison.
type ID struct {
	Num, Den int64
	// packed holds the sibling path as big-endian 4-byte ranks. Packing as
	// a string keeps ID comparable and makes Key() allocation-free to
	// derive. Lexicographic order on packed paths is document order, and a
	// proper prefix is exactly a proper ancestor.
	packed string
}

// String renders the label the way Tropashko writes it.
func (id ID) String() string { return fmt.Sprintf("%d/%d", id.Num, id.Den) }

// Key implements scheme.ID: big-endian 4-byte sibling ranks. bytes.Compare
// on keys is document order (a prefix — an ancestor — sorts first).
func (id ID) Key() []byte { return []byte(id.packed) }

// depth returns the node's depth below the document root (root = 0).
func (id ID) depth() int { return len(id.packed)/4 - 1 }

func packPath(path []uint32) string {
	var b strings.Builder
	b.Grow(4 * len(path))
	var buf [4]byte
	for _, c := range path {
		binary.BigEndian.PutUint32(buf[:], c)
		b.Write(buf[:])
	}
	return b.String()
}

func unpackPath(packed string) []uint32 {
	path := make([]uint32, len(packed)/4)
	for i := range path {
		path[i] = binary.BigEndian.Uint32([]byte(packed[4*i : 4*i+4]))
	}
	return path
}

// idFor builds the ID of a sibling path, or ErrOverflow.
func idFor(path []uint32) (ID, error) {
	num, den, err := EncodePath(path)
	if err != nil {
		return ID{}, err
	}
	return ID{Num: num, Den: den, packed: packPath(path)}, nil
}

// Numbering is a nested-interval numbering of one tree snapshot. It
// implements scheme.Scheme, scheme.AxisScheme, scheme.Updatable,
// scheme.Depther and scheme.LabelSizer.
type Numbering struct {
	doc  *xmltree.Node
	root *xmltree.Node

	ids     map[*xmltree.Node]ID
	byKey   map[string]*xmltree.Node
	ordered []*xmltree.Node // all numbered nodes in document order
	pos     map[string]int  // packed path -> index in ordered
}

// Build numbers doc (a Document node or an element treated as root) with
// continued-fraction nested intervals. Attributes are not numbered. Build
// fails with ErrOverflow when some label does not fit in int64.
func Build(doc *xmltree.Node) (*Numbering, error) {
	root := doc
	if doc.Kind == xmltree.Document {
		root = doc.DocumentElement()
		if root == nil {
			return nil, fmt.Errorf("nestedint: document has no root element")
		}
	}
	n := &Numbering{doc: doc, root: root}
	if err := n.renumberAll(); err != nil {
		return nil, err
	}
	return n, nil
}

// renumberAll assigns dense canonical labels to the whole snapshot into
// fresh tables. On error the receiver is left unchanged.
func (n *Numbering) renumberAll() error {
	ids := make(map[*xmltree.Node]ID)
	byKey := make(map[string]*xmltree.Node)
	var ordered []*xmltree.Node
	pos := make(map[string]int)

	var walk func(d *xmltree.Node, path []uint32) error
	walk = func(d *xmltree.Node, path []uint32) error {
		id, err := idFor(path)
		if err != nil {
			return err
		}
		ids[d] = id
		byKey[id.packed] = d
		pos[id.packed] = len(ordered)
		ordered = append(ordered, d)
		for i, c := range d.Children {
			if err := walk(c, append(path, uint32(i+1))); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(n.root, []uint32{1}); err != nil {
		return err
	}
	n.ids, n.byKey, n.ordered, n.pos = ids, byKey, ordered, pos
	return nil
}

// Name implements scheme.Scheme.
func (n *Numbering) Name() string { return "nestedint" }

// Size returns the number of numbered nodes.
func (n *Numbering) Size() int { return len(n.ids) }

// LabelBytes implements scheme.LabelSizer: two int64 words per node (the
// rational); the path is derivable and not counted as resident label state.
func (n *Numbering) LabelBytes() int { return 16 * len(n.ids) }

// IDOf implements scheme.Scheme.
func (n *Numbering) IDOf(node *xmltree.Node) (scheme.ID, bool) {
	id, ok := n.ids[node]
	if !ok {
		return nil, false
	}
	return id, true
}

// NodeOf implements scheme.Scheme.
func (n *Numbering) NodeOf(id scheme.ID) (*xmltree.Node, bool) {
	nid, ok := id.(ID)
	if !ok {
		return nil, false
	}
	node, ok := n.byKey[nid.packed]
	return node, ok
}

// Parent implements scheme.Scheme by identifier arithmetic alone: the path
// is recovered from the rational with Euclid's algorithm, truncated, and
// re-encoded. No tree or table access is involved.
func (n *Numbering) Parent(id scheme.ID) (scheme.ID, bool) {
	nid, ok := id.(ID)
	if !ok {
		return nil, false
	}
	path, err := DecodePath(nid.Num, nid.Den)
	if err != nil || len(path) <= 1 {
		return nil, false
	}
	pid, err := idFor(path[:len(path)-1])
	if err != nil {
		return nil, false
	}
	return pid, true
}

// IsAncestor implements scheme.Scheme: anc is a proper ancestor of desc iff
// anc's path is a proper prefix of desc's.
func (n *Numbering) IsAncestor(anc, desc scheme.ID) bool {
	a, ok := anc.(ID)
	if !ok {
		return false
	}
	d, ok := desc.(ID)
	if !ok {
		return false
	}
	return len(a.packed) < len(d.packed) && strings.HasPrefix(d.packed, a.packed)
}

// CompareOrder implements scheme.Scheme: lexicographic comparison of packed
// paths is document order, with ancestors before descendants.
func (n *Numbering) CompareOrder(a, b scheme.ID) int {
	return strings.Compare(a.(ID).packed, b.(ID).packed)
}

// Depth implements scheme.Depther (document root element at depth 0).
func (n *Numbering) Depth(id scheme.ID) (int, bool) {
	nid, ok := id.(ID)
	if !ok || len(nid.packed) == 0 {
		return 0, false
	}
	return nid.depth(), true
}

// Ancestors implements scheme.AxisScheme, nearest first.
func (n *Numbering) Ancestors(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	var out []scheme.ID
	for k := len(nid.packed)/4 - 1; k >= 1; k-- {
		prefix := nid.packed[:4*k]
		node, ok := n.byKey[prefix]
		if !ok {
			return out
		}
		out = append(out, n.ids[node])
	}
	return out
}

// Children implements scheme.AxisScheme by probing successive sibling
// ranks; labels are dense, so the first miss ends the axis.
func (n *Numbering) Children(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	var out []scheme.ID
	path := append(unpackPath(nid.packed), 0)
	for r := uint32(1); ; r++ {
		path[len(path)-1] = r
		node, ok := n.byKey[packPath(path)]
		if !ok {
			return out
		}
		out = append(out, n.ids[node])
	}
}

// Descendants implements scheme.AxisScheme: descendants are the contiguous
// document-order run of nodes whose packed path extends id's.
func (n *Numbering) Descendants(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	p, ok := n.pos[nid.packed]
	if !ok {
		return nil
	}
	var out []scheme.ID
	for _, d := range n.ordered[p+1:] {
		did := n.ids[d]
		if !strings.HasPrefix(did.packed, nid.packed) {
			break
		}
		out = append(out, did)
	}
	return out
}

// subtreeEnd returns the ordered index one past the last descendant of the
// node at ordered index p.
func (n *Numbering) subtreeEnd(p int) int {
	prefix := n.ids[n.ordered[p]].packed
	e := p + 1
	for e < len(n.ordered) && strings.HasPrefix(n.ids[n.ordered[e]].packed, prefix) {
		e++
	}
	return e
}

// FollowingSiblings implements scheme.AxisScheme.
func (n *Numbering) FollowingSiblings(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	path := unpackPath(nid.packed)
	if len(path) <= 1 {
		return nil // the root has no siblings
	}
	var out []scheme.ID
	for r := path[len(path)-1] + 1; ; r++ {
		path[len(path)-1] = r
		node, ok := n.byKey[packPath(path)]
		if !ok {
			return out
		}
		out = append(out, n.ids[node])
	}
}

// PrecedingSiblings implements scheme.AxisScheme, nearest first.
func (n *Numbering) PrecedingSiblings(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	path := unpackPath(nid.packed)
	if len(path) <= 1 {
		return nil
	}
	var out []scheme.ID
	for r := path[len(path)-1] - 1; r >= 1; r-- {
		path[len(path)-1] = r
		node, ok := n.byKey[packPath(path)]
		if !ok {
			return out
		}
		out = append(out, n.ids[node])
	}
	return out
}

// Following implements scheme.AxisScheme: everything after id's subtree in
// document order (ancestors precede id, so nothing needs filtering).
func (n *Numbering) Following(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	p, ok := n.pos[nid.packed]
	if !ok {
		return nil
	}
	rest := n.ordered[n.subtreeEnd(p):]
	out := make([]scheme.ID, 0, len(rest))
	for _, d := range rest {
		out = append(out, n.ids[d])
	}
	return out
}

// Preceding implements scheme.AxisScheme: everything before id in document
// order except its ancestors.
func (n *Numbering) Preceding(id scheme.ID) []scheme.ID {
	nid, ok := id.(ID)
	if !ok {
		return nil
	}
	p, ok := n.pos[nid.packed]
	if !ok {
		return nil
	}
	var out []scheme.ID
	for _, d := range n.ordered[:p] {
		did := n.ids[d]
		if strings.HasPrefix(nid.packed, did.packed) {
			continue // ancestor
		}
		out = append(out, did)
	}
	return out
}

// InsertChild implements scheme.Updatable. Labels are kept dense and
// canonical, so inserting at position pos relabels the following siblings
// of the new node together with their whole subtrees — the nested-interval
// update cost the bake-off measures. If any relabeled node's canonical
// label would overflow int64, the tree mutation is rolled back and
// ErrOverflow returned: the document is left exactly as before the call
// (the relabel-on-overflow policy; see the package comment).
func (n *Numbering) InsertChild(parent *xmltree.Node, pos int, newChild *xmltree.Node) (scheme.UpdateStats, error) {
	if _, ok := n.ids[parent]; !ok {
		return scheme.UpdateStats{}, fmt.Errorf("nestedint: insert under unnumbered node %s", parent.Path())
	}
	if pos < 0 || pos > len(parent.Children) {
		return scheme.UpdateStats{}, fmt.Errorf("nestedint: insert position %d out of range", pos)
	}
	parent.InsertChildAt(pos, newChild)
	old := n.ids
	if err := n.renumberAll(); err != nil {
		parent.RemoveChild(pos)
		return scheme.UpdateStats{}, err
	}
	return diffStats(old, n.ids), nil
}

// DeleteChild implements scheme.Updatable (cascading, per §3.2 of the
// paper): the subtree's labels vanish and the following siblings' subtrees
// are relabeled down into the freed ranks.
func (n *Numbering) DeleteChild(parent *xmltree.Node, pos int) (scheme.UpdateStats, error) {
	if _, ok := n.ids[parent]; !ok {
		return scheme.UpdateStats{}, fmt.Errorf("nestedint: delete under unnumbered node %s", parent.Path())
	}
	if pos < 0 || pos >= len(parent.Children) {
		return scheme.UpdateStats{}, fmt.Errorf("nestedint: delete position %d out of range", pos)
	}
	removed := parent.RemoveChild(pos)
	old := n.ids
	if err := n.renumberAll(); err != nil {
		// Shrinking ranks can only shrink labels, so this is unreachable;
		// restore the tree all the same rather than corrupt it.
		parent.InsertChildAt(pos, removed)
		return scheme.UpdateStats{}, err
	}
	return diffStats(old, n.ids), nil
}

// diffStats counts pre-existing nodes whose label changed.
func diffStats(old, fresh map[*xmltree.Node]ID) scheme.UpdateStats {
	var st scheme.UpdateStats
	for node, oldID := range old {
		if newID, ok := fresh[node]; ok && newID != oldID {
			st.Relabeled++
		}
	}
	return st
}

func init() {
	scheme.Register(scheme.Registration{
		Name: "nestedint",
		Caps: scheme.Capabilities{Axes: true, Update: true, ComputedParent: true, Depth: true, OrderedKeys: true},
		Build: func(doc *xmltree.Node) (scheme.Scheme, error) {
			return Build(doc)
		},
	})
}
