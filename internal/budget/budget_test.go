package budget

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilMeterAdmitsEverything(t *testing.T) {
	var m *Meter
	if !m.ChargePostings(1 << 30) {
		t.Fatal("nil meter refused postings")
	}
	if !m.ChargeResults(1 << 30) {
		t.Fatal("nil meter refused results")
	}
	if !m.Check() {
		t.Fatal("nil meter failed Check")
	}
	if m.Err() != nil || m.Exhausted() {
		t.Fatal("nil meter reports an error")
	}
	if m.Postings() != 0 || m.Results() != 0 {
		t.Fatal("nil meter reports charges")
	}
}

func TestZeroLimitsUnlimited(t *testing.T) {
	if !(Limits{}).Unlimited() {
		t.Fatal("zero Limits not unlimited")
	}
	m := NewMeter(nil, Limits{})
	for i := 0; i < 100; i++ {
		if !m.ChargePostings(1<<20) || !m.ChargeResults(1<<20) {
			t.Fatal("unlimited meter refused a charge")
		}
	}
	if m.Err() != nil {
		t.Fatalf("unlimited meter tripped: %v", m.Err())
	}
}

func TestPostingsLimitTripsAndLatches(t *testing.T) {
	m := NewMeter(nil, Limits{MaxPostings: 100})
	if !m.ChargePostings(100) {
		t.Fatal("charge at the limit refused")
	}
	if m.ChargePostings(1) {
		t.Fatal("charge past the limit admitted")
	}
	if !errors.Is(m.Err(), ErrPostingsBudget) {
		t.Fatalf("Err = %v, want ErrPostingsBudget", m.Err())
	}
	// Latch: every later charge of any kind is refused.
	if m.ChargeResults(1) || m.ChargePostings(0) || m.Check() {
		t.Fatal("tripped meter admitted a later charge")
	}
	if m.Postings() != 101 {
		t.Fatalf("Postings = %d, want 101", m.Postings())
	}
}

func TestResultLimitTrips(t *testing.T) {
	m := NewMeter(nil, Limits{MaxResults: 10})
	if !m.ChargeResults(10) {
		t.Fatal("charge at the limit refused")
	}
	if m.ChargeResults(1) {
		t.Fatal("charge past the limit admitted")
	}
	if !errors.Is(m.Err(), ErrResultBudget) {
		t.Fatalf("Err = %v, want ErrResultBudget", m.Err())
	}
}

func TestDeadlineSurfacesContextError(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	m := NewMeter(ctx, Limits{MaxPostings: 1 << 40})
	if m.ChargePostings(1) {
		t.Fatal("expired context admitted a charge")
	}
	if !errors.Is(m.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", m.Err())
	}
}

func TestCancelSurfacesContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMeter(ctx, Limits{})
	if m.Check() {
		t.Fatal("cancelled context passed Check")
	}
	if !errors.Is(m.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", m.Err())
	}
}

// TestConcurrentCharges exercises the latch under -race: many goroutines
// charge concurrently; exactly one sentinel wins and the totals stay exact
// up to the charges admitted before the trip.
func TestConcurrentCharges(t *testing.T) {
	m := NewMeter(nil, Limits{MaxPostings: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if !m.ChargePostings(1) {
					return
				}
			}
		}()
	}
	wg.Wait()
	if !errors.Is(m.Err(), ErrPostingsBudget) {
		t.Fatalf("Err = %v, want ErrPostingsBudget", m.Err())
	}
}
