package index

import (
	"errors"
	"sort"

	"repro/internal/core"
)

// Incremental maintenance for ruid-backed indexes: epoch publication calls
// ApplyDelta with the scope of one structural update instead of re-walking
// the document with Build. Postings of untouched names are shared with the
// previous epoch's index, honoring the facade's immutability invariant
// (neither index is ever mutated).

// ErrNotRUID reports an ApplyDelta on a generic (boxed) index, which has no
// incremental path.
var ErrNotRUID = errors.New("index: ApplyDelta requires a ruid-backed index")

// ApplyDelta returns the next epoch's index: for every name in relabeled /
// removed / inserted, a fresh posting list is derived from the previous one
// (the blocks are decoded, identifiers substituted in place, removed
// entries dropped, the inserted identifiers — one or more subtrees'
// elements, possibly non-contiguous when a group commit batches several
// inserts — merged in document order, and the result re-encoded into
// fresh blocks); every other name shares its *PostingList with the
// receiver, so the block-granularity cost of an update is bounded by the
// touched names. rn becomes the new index's numbering and is used for the
// document-order comparisons of the splice; it must be the next epoch's
// (or the master's post-update) numbering.
func (ix *NameIndex) ApplyDelta(
	rn *core.Numbering,
	relabeled map[string]map[core.ID]core.ID,
	removed map[string]map[core.ID]bool,
	inserted map[string][]core.ID,
) (*NameIndex, error) {
	nix, _, err := ix.ApplyDeltaStats(rn, relabeled, removed, inserted)
	return nix, err
}

// DeltaStats quantifies the scope of one ApplyDelta: how much of the index
// an update actually re-encoded versus structurally shared. The document
// facade folds it into the observability registry so the paper's
// update-scope claim is visible at runtime, not just in benchmarks.
type DeltaStats struct {
	NamesTouched      int // names whose posting list was re-derived
	NamesShared       int // names whose *PostingList is shared with the previous epoch
	PostingsReencoded int // postings written into fresh blocks across touched names
}

// ApplyDeltaStats is ApplyDelta reporting the re-encode scope alongside the
// next index.
func (ix *NameIndex) ApplyDeltaStats(
	rn *core.Numbering,
	relabeled map[string]map[core.ID]core.ID,
	removed map[string]map[core.ID]bool,
	inserted map[string][]core.ID,
) (*NameIndex, DeltaStats, error) {
	var st DeltaStats
	if ix.ruid == nil {
		return nil, st, ErrNotRUID
	}
	out := &NameIndex{s: rn, ruid: rn, ruidByName: make(map[string]*PostingList, len(ix.ruidByName))}
	for name, pl := range ix.ruidByName {
		out.ruidByName[name] = pl
	}
	touched := make(map[string]bool, len(relabeled)+len(removed)+len(inserted))
	for name := range relabeled {
		touched[name] = true
	}
	for name := range removed {
		touched[name] = true
	}
	for name := range inserted {
		touched[name] = true
	}
	for name := range touched {
		old := out.ruidByName[name]
		st.NamesTouched++
		rl := relabeled[name]
		rm := removed[name]
		ins := inserted[name]
		list := make([]core.ID, 0, old.Len()+len(ins))
		list = old.AppendAll(list)
		kept := list[:0]
		for _, id := range list {
			if rm[id] {
				continue
			}
			if nid, ok := rl[id]; ok {
				id = nid
			}
			kept = append(kept, id)
		}
		list = kept
		if len(ins) > 0 {
			// Relabeling within one area preserves relative document order, so
			// the surviving list is still sorted. The inserted identifiers may
			// span several subtrees (a group commit splices every insert of
			// the batch in one pass), so they are sorted and linearly merged
			// rather than spliced at a single position; a single contiguous
			// run degenerates to exactly the old one-position splice.
			ins = append([]core.ID(nil), ins...)
			sort.Slice(ins, func(i, j int) bool {
				return rn.CompareOrderID(ins[i], ins[j]) < 0
			})
			merged := make([]core.ID, 0, len(list)+len(ins))
			i, j := 0, 0
			for i < len(list) && j < len(ins) {
				if rn.CompareOrderID(list[i], ins[j]) <= 0 {
					merged = append(merged, list[i])
					i++
				} else {
					merged = append(merged, ins[j])
					j++
				}
			}
			merged = append(merged, list[i:]...)
			merged = append(merged, ins[j:]...)
			list = merged
		}
		if len(list) == 0 {
			delete(out.ruidByName, name)
		} else {
			out.ruidByName[name] = BuildPostingList(list)
			st.PostingsReencoded += len(list)
		}
	}
	for name := range ix.ruidByName {
		if !touched[name] {
			st.NamesShared++
		}
	}
	out.assertSorted("ApplyDelta")
	return out, st, nil
}
