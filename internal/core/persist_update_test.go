package core

import (
	"bytes"
	"testing"

	"repro/internal/xmltree"
)

// TestSaveLoadAfterUpdateHistory: a numbering that has lived through a
// post-build update history — an overflow heal that promoted a fresh area
// root, an area enlargement, and cascading deletes — serializes and
// reloads with every identifier and every row of table K bit-for-bit
// identical. This pins that the snapshot format captures update-produced
// state (promoted areas, grown fan-outs, freed slots), not just what Build
// emits.
func TestSaveLoadAfterUpdateHistory(t *testing.T) {
	doc, err := xmltree.ParseString("<r><p><q><s/></q></p><u/></r>")
	if err != nil {
		t.Fatal(err)
	}
	r := doc.DocumentElement()
	q := r.FirstChildElement("p").FirstChildElement("q")
	// One explicit area and 3-bit local indices: s sits at the local limit.
	n1, err := Build(doc, Options{
		Roots:     map[*xmltree.Node]bool{},
		Partition: PartitionConfig{MaxLocalBits: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n1.AreaCount() != 1 {
		t.Fatalf("fixture has %d areas, want 1", n1.AreaCount())
	}

	// A third child of r grows the fan-out to 3, pushing s past the local
	// limit; the overflow heals by promoting q to an area root.
	st, err := n1.InsertChild(r, 2, xmltree.NewElement("w"))
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRebuild || n1.AreaCount() != 2 {
		t.Fatalf("expected a healing rebuild into 2 areas, got %+v / %d areas", st, n1.AreaCount())
	}
	// An enlargement confined to the promoted area (fan-out 1 → 2).
	st, err = n1.InsertChild(q, 1, xmltree.NewElement("t2"))
	if err != nil {
		t.Fatal(err)
	}
	if st.FullRebuild || st.AreaRebuilds != 1 {
		t.Fatalf("expected one confined area rebuild, got %+v", st)
	}
	// Deletes: one leaf, then one subtree.
	if _, err := n1.DeleteChild(r, 1); err != nil { // u
		t.Fatal(err)
	}
	if _, err := n1.DeleteChild(q, 0); err != nil { // s
		t.Fatal(err)
	}
	verifyAgainstGroundTruth(t, n1)

	var buf bytes.Buffer
	if err := n1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)

	// Reload onto a fresh parse of the post-update document.
	doc2, err := xmltree.ParseString(xmltree.Serialize(doc))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Load(doc2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Kappa() != n1.Kappa() || n2.AreaCount() != n1.AreaCount() || n2.Size() != n1.Size() {
		t.Fatalf("header mismatch: kappa %d/%d areas %d/%d size %d/%d",
			n1.Kappa(), n2.Kappa(), n1.AreaCount(), n2.AreaCount(), n1.Size(), n2.Size())
	}
	nodes1 := doc.DocumentElement().Nodes()
	nodes2 := doc2.DocumentElement().Nodes()
	if len(nodes1) != len(nodes2) {
		t.Fatal("document shape mismatch")
	}
	for i := range nodes1 {
		id1, ok1 := n1.RUID(nodes1[i])
		id2, ok2 := n2.RUID(nodes2[i])
		if !ok1 || !ok2 || id1 != id2 {
			t.Fatalf("node %d (%s): ids %v/%v (ok %v/%v)",
				i, nodes1[i].Path(), id1, id2, ok1, ok2)
		}
	}
	k1, k2 := n1.K(), n2.K()
	if len(k1) != len(k2) {
		t.Fatalf("K sizes differ: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("K row %d: %v vs %v", i, k1[i], k2[i])
		}
	}
	verifyAgainstGroundTruth(t, n2)

	// The reloaded numbering re-serializes to the exact same bytes.
	var buf2 bytes.Buffer
	if err := n2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatalf("re-save differs: %d vs %d bytes", len(saved), len(buf2.Bytes()))
	}
}
