package index

import (
	"sort"

	"repro/internal/scheme"
)

// This file holds the comparison-only structural-join kernels: the variants
// of the semi-joins in index.go that need nothing from the scheme beyond
// CompareOrder and IsAncestor (plus Depth for the parent/child steps).
// They are what the planner falls back to when a scheme lacks the
// ComputedParent capability — pre/post intervals, extended preorder, and
// the compact ancestry labels can all run these, while the Parent-climbing
// kernels above are reserved for the UID family. Both inputs must be in
// document order (the maintained postings invariant).

// CanChildStep reports whether scheme s can execute child-edge semi-joins:
// either by Parent computation (the UID family) or by the depth-aware merge
// kernels (schemes exposing Depth). Pure interval schemes without depth
// (prepost, limoon) cannot, and the planner keeps child steps on the
// navigation engine for them.
func CanChildStep(s scheme.Scheme) bool {
	if scheme.CapsOf(s).ComputedParent {
		return true
	}
	_, ok := s.(scheme.Depther)
	return ok
}

// SemiJoinDescendants keeps the descs having a proper ancestor in ancs,
// choosing the kernel the scheme's capabilities allow: Parent-climbing for
// the UID family, the stack merge otherwise.
func SemiJoinDescendants(s scheme.Scheme, ancs, descs []scheme.ID) []scheme.ID {
	if scheme.CapsOf(s).ComputedParent {
		return UpwardSemiJoin(s, ancs, descs)
	}
	return MergeSemiJoin(s, ancs, descs)
}

// SemiJoinChildren keeps the descs whose direct parent is in ancs; ok is
// false when the scheme supports neither kernel (see CanChildStep).
func SemiJoinChildren(s scheme.Scheme, ancs, descs []scheme.ID) ([]scheme.ID, bool) {
	if scheme.CapsOf(s).ComputedParent {
		return ParentSemiJoin(s, ancs, descs), true
	}
	if d, ok := s.(scheme.Depther); ok {
		return MergeParentSemiJoin(d, ancs, descs), true
	}
	return nil, false
}

// SemiJoinAncestors keeps the ancs having a proper descendant in descs,
// choosing the kernel the scheme's capabilities allow.
func SemiJoinAncestors(s scheme.Scheme, ancs, descs []scheme.ID) []scheme.ID {
	if scheme.CapsOf(s).ComputedParent {
		return AncestorSemiJoin(s, ancs, descs)
	}
	return MergeAncestorSemiJoin(s, ancs, descs)
}

// SemiJoinParents keeps the ancs having a direct child in descs; ok is
// false when the scheme supports neither kernel.
func SemiJoinParents(s scheme.Scheme, ancs, descs []scheme.ID) ([]scheme.ID, bool) {
	if scheme.CapsOf(s).ComputedParent {
		return ChildSemiJoin(s, ancs, descs), true
	}
	if d, ok := s.(scheme.Depther); ok {
		return MergeChildSemiJoin(d, ancs, descs), true
	}
	return nil, false
}

// MergeSemiJoin returns the descendants of descs having at least one proper
// ancestor in ancs, in input (document) order: the semi-join form of
// MergeJoin, emitting each descendant at most once.
func MergeSemiJoin(s scheme.Scheme, ancs, descs []scheme.ID) []scheme.ID {
	var out []scheme.ID
	var stack []scheme.ID
	i := 0
	for _, d := range descs {
		for i < len(ancs) && s.CompareOrder(ancs[i], d) < 0 {
			for len(stack) > 0 && !s.IsAncestor(stack[len(stack)-1], ancs[i]) &&
				s.CompareOrder(stack[len(stack)-1], ancs[i]) < 0 {
				stack = stack[:len(stack)-1]
			}
			stack = append(stack, ancs[i])
			i++
		}
		for len(stack) > 0 && !s.IsAncestor(stack[len(stack)-1], d) {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			out = append(out, d)
		}
	}
	return out
}

// MergeAncestorSemiJoin returns the ancestors of ancs having at least one
// proper descendant in descs, in ancs order. It exploits the interval
// property every document-ordered scheme shares: the descendants of a form
// a contiguous run immediately after a in document order, so the first
// element of descs ordered after a is a descendant of a iff any is — one
// binary search plus one IsAncestor test per ancestor.
func MergeAncestorSemiJoin(s scheme.Scheme, ancs, descs []scheme.ID) []scheme.ID {
	var out []scheme.ID
	for _, a := range ancs {
		i := sort.Search(len(descs), func(i int) bool { return s.CompareOrder(descs[i], a) > 0 })
		if i < len(descs) && s.IsAncestor(a, descs[i]) {
			out = append(out, a)
		}
	}
	return out
}

// nearestAdmitted advances the merge frontier for the depth-aware kernels:
// it admits ancestor candidates starting before d onto the stack and pops
// the candidates whose subtree closed, leaving the nearest ancs-ancestor of
// d (if any) on top. It returns the updated frontier.
func nearestAdmitted(s scheme.Scheme, ancs []scheme.ID, d scheme.ID, i int, stack []scheme.ID) (int, []scheme.ID) {
	for i < len(ancs) && s.CompareOrder(ancs[i], d) < 0 {
		for len(stack) > 0 && !s.IsAncestor(stack[len(stack)-1], ancs[i]) &&
			s.CompareOrder(stack[len(stack)-1], ancs[i]) < 0 {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, ancs[i])
		i++
	}
	for len(stack) > 0 && !s.IsAncestor(stack[len(stack)-1], d) {
		stack = stack[:len(stack)-1]
	}
	return i, stack
}

// MergeParentSemiJoin returns the descendants of descs whose *direct
// parent* is in ancs, in input (document) order, without computing any
// parent identifier: the nearest ancs-ancestor of d (the stack top) is d's
// parent exactly when its depth is depth(d)−1.
func MergeParentSemiJoin(s scheme.Depther, ancs, descs []scheme.ID) []scheme.ID {
	var out []scheme.ID
	var stack []scheme.ID
	i := 0
	for _, d := range descs {
		i, stack = nearestAdmitted(s, ancs, d, i, stack)
		if len(stack) == 0 {
			continue
		}
		pd, ok1 := s.Depth(stack[len(stack)-1])
		dd, ok2 := s.Depth(d)
		if ok1 && ok2 && pd+1 == dd {
			out = append(out, d)
		}
	}
	return out
}

// MergeChildSemiJoin returns the ancestors of ancs having at least one
// *direct child* in descs, in ancs order — the depth-aware dual of
// MergeParentSemiJoin.
func MergeChildSemiJoin(s scheme.Depther, ancs, descs []scheme.ID) []scheme.ID {
	hit := make(map[string]bool)
	var stack []scheme.ID
	i := 0
	for _, d := range descs {
		i, stack = nearestAdmitted(s, ancs, d, i, stack)
		if len(stack) == 0 {
			continue
		}
		top := stack[len(stack)-1]
		pd, ok1 := s.Depth(top)
		dd, ok2 := s.Depth(d)
		if ok1 && ok2 && pd+1 == dd {
			hit[key(top)] = true
		}
	}
	out := make([]scheme.ID, 0, len(hit))
	for _, a := range ancs {
		if hit[key(a)] {
			out = append(out, a)
		}
	}
	return out
}
