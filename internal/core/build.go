package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// ErrOverflow reports that an index computation exceeded int64. Local-level
// overflows during Build are healed automatically by promoting the
// offending node to an area root; a global-level overflow signals that the
// frame itself should be split with a multilevel ruid.
var ErrOverflow = errors.New("core: index exceeds int64")

// overflowError wraps ErrOverflow with the node whose child index no longer
// fits, so Build can split the area there.
type overflowError struct {
	area int64
	node *xmltree.Node
}

func (e *overflowError) Error() string {
	return fmt.Sprintf("core: index exceeds int64: local index in area %d", e.area)
}

func (e *overflowError) Unwrap() error { return ErrOverflow }

// errorsAs is errors.As, aliased to keep the Build loop readable.
func errorsAs(err error, target **overflowError) bool { return errors.As(err, target) }

// Options configure Build.
type Options struct {
	// Partition controls automatic area-root selection; ignored when Roots
	// is set.
	Partition PartitionConfig
	// Roots, when non-nil, fixes the set of area roots explicitly (the
	// document root is added implicitly). Used by golden tests that pin the
	// paper's example partition, and by callers with domain knowledge.
	Roots map[*xmltree.Node]bool
	// WithAttrs enumerates attribute nodes as leading children of their
	// element so that every component of the document is numbered (§4).
	WithAttrs bool
}

// area is the bookkeeping for one UID-local area.
type area struct {
	global       int64         // global index (frame UID)
	root         *xmltree.Node // area root
	rootLocal    int64         // index of root in the upper area (1 for the document root)
	fanout       int64         // local enumeration fan-out kᵢ
	parentGlobal int64         // global index of the upper area (0 for the root area)

	// rootByLocal maps a local slot of this area to the global index of
	// the lower area rooted there (the boundary leaves). It is the
	// materialization of the paper's "search K for a row whose global
	// index is a frame child of θ and whose local index is i".
	rootByLocal map[int64]int64

	// locals maps local index -> node for every node enumerated in this
	// area, including boundary leaves that are roots of lower areas (their
	// stored ID differs, but they occupy a local slot here). It models the
	// clustered (global, local) index of the stored document.
	locals map[int64]*xmltree.Node

	// boundary inverts locals for the boundary leaves only: lower-area
	// root -> its local slot here. Filled during enumeration so step 4 of
	// renumberAll resolves each area root's upper-area slot in O(1)
	// instead of scanning the upper area (quadratic on wide documents).
	boundary map[*xmltree.Node]int64

	sortedLocals []int64 // keys of locals in increasing order
	sortedDirty  bool
}

func (a *area) ensureSorted() {
	if !a.sortedDirty {
		return
	}
	a.sortedLocals = a.sortedLocals[:0]
	for l := range a.locals {
		a.sortedLocals = append(a.sortedLocals, l)
	}
	sort.Slice(a.sortedLocals, func(i, j int) bool { return a.sortedLocals[i] < a.sortedLocals[j] })
	a.sortedDirty = false
}

// localsInRange returns the existing local indices in [lo, hi], ascending.
func (a *area) localsInRange(lo, hi int64) []int64 {
	a.ensureSorted()
	start := sort.Search(len(a.sortedLocals), func(i int) bool { return a.sortedLocals[i] >= lo })
	var out []int64
	for i := start; i < len(a.sortedLocals) && a.sortedLocals[i] <= hi; i++ {
		out = append(out, a.sortedLocals[i])
	}
	return out
}

// Numbering is a 2-level ruid numbering of one document snapshot.
// It implements scheme.AxisScheme and scheme.Updatable.
//
// A Numbering exists in one of two representations:
//
//   - master mode (the output of Build and Load): areas/ids/nodes/areaRoots
//     are populated and structural updates are accepted;
//   - epoch mode (the output of CloneFor and CloneDelta): the table K is a
//     slice sorted by global index (areaIdx), node→ID lookups read the
//     xmltree.NodeNum stamp burned into each node, and ID→node lookups
//     resolve through the per-area slot maps. Epoch numberings are
//     immutable and reject updates with ErrImmutable; they exist so that
//     epoch publication shares untouched areas structurally instead of
//     rebuilding O(n) maps per write.
type Numbering struct {
	doc  *xmltree.Node
	root *xmltree.Node
	opts Options

	kappa      int64 // frame fan-out κ
	localLimit int64 // largest admissible local index (see MaxLocalBits)

	areas map[int64]*area // by global index; the in-memory table K (master mode)
	ids   map[*xmltree.Node]ID
	nodes map[ID]*xmltree.Node

	areaRoots map[*xmltree.Node]bool // current set S (master mode)

	areaIdx *areaIndex // the table K, chunked and sorted by global index (epoch mode)
	size    int        // numbered-node count (epoch mode; master mode uses len(ids))
}

// epochMode reports whether n is an immutable epoch clone.
func (n *Numbering) epochMode() bool { return n.areas == nil }

// forEachArea visits every K row in either representation.
func (n *Numbering) forEachArea(fn func(*area)) {
	if n.areas != nil {
		for _, a := range n.areas {
			fn(a)
		}
		return
	}
	n.areaIdx.forEach(fn)
}

// Build constructs the 2-level ruid for doc following the algorithm of
// Fig. 3: partition into UID-local areas, enumerate the frame with a κ-ary
// UID for the global indices, enumerate each area with its own kᵢ-ary UID
// for the local indices, and record κ and the table K.
func Build(doc *xmltree.Node, opts Options) (*Numbering, error) {
	root := doc
	if doc.Kind == xmltree.Document {
		root = doc.DocumentElement()
		if root == nil {
			return nil, errors.New("core: document has no root element")
		}
	}
	n := &Numbering{doc: doc, root: root, opts: opts}
	bits := opts.Partition.MaxLocalBits
	if bits <= 0 {
		bits = DefaultMaxLocalBits
	}
	if bits > 62 {
		bits = 62
	}
	n.localLimit = int64(1) << bits

	// Step 1 of Fig. 3: partition into UID-local areas; build the frame.
	if opts.Roots != nil {
		n.areaRoots = make(map[*xmltree.Node]bool, len(opts.Roots)+1)
		for r, ok := range opts.Roots {
			if ok {
				n.areaRoots[r] = true
			}
		}
		n.areaRoots[root] = true
	} else {
		n.areaRoots = SelectAreaRoots(root, opts.Partition, opts.WithAttrs)
	}
	// A node-count budget alone does not bound local identifier magnitude:
	// an area mixing a wide node with a deep path can push a kᵢ-ary local
	// index past int64. When that happens, promote the node where the
	// overflow occurred to an area root (shrinking the area) and retry;
	// each promotion strictly reduces the offending area, so this
	// terminates.
	for {
		err := n.renumberAll()
		if err == nil {
			return n, nil
		}
		var ov *overflowError
		if !errorsAs(err, &ov) || ov.node == nil || n.areaRoots[ov.node] {
			return nil, err
		}
		n.areaRoots[ov.node] = true
		// Promotions add frame children; keep the §2.3 guarantee holding.
		if opts.Roots == nil && opts.Partition.AdjustFanout {
			adjustFanout(root, n.areaRoots, opts.WithAttrs)
		}
	}
}

// renumberAll recomputes the full numbering from the current tree and area
// root set (steps 2–4 of Fig. 3).
func (n *Numbering) renumberAll() error {
	frameKids := frameChildren(n.root, n.areaRoots)

	// Step 2: κ is the maximal fan-out of the frame.
	n.kappa = 1
	for _, kids := range frameKids {
		if int64(len(kids)) > n.kappa {
			n.kappa = int64(len(kids))
		}
	}

	n.areas = make(map[int64]*area)
	n.ids = make(map[*xmltree.Node]ID, len(n.ids))
	n.nodes = make(map[ID]*xmltree.Node, len(n.nodes))

	// Step 3: enumerate the frame with a κ-ary UID (global indices), then
	// each area with its own local UID. enumerateArea fills in rootLocal
	// lazily: an area root's local index in the upper area is known once
	// the upper area is enumerated, so areas are processed top-down.
	type job struct {
		root         *xmltree.Node
		global       int64
		parentGlobal int64
	}
	queue := []job{{n.root, 1, 0}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		a := &area{
			global:       j.global,
			root:         j.root,
			parentGlobal: j.parentGlobal,
			locals:       make(map[int64]*xmltree.Node),
			rootByLocal:  make(map[int64]int64),
			sortedDirty:  true,
		}
		n.areas[j.global] = a
		if err := n.enumerateArea(a); err != nil {
			return err
		}
		for idx, kid := range frameKids[j.root] {
			cg, ok := childIndex(j.global, n.kappa, idx)
			if !ok {
				return fmt.Errorf("%w: frame child of area %d", ErrOverflow, j.global)
			}
			queue = append(queue, job{kid, cg, j.global})
		}
	}

	// Step 4: compose identifiers. Interior nodes got theirs during area
	// enumeration; area roots get (own global, index in upper area, true).
	rootArea := n.areas[1]
	rootArea.rootLocal = 1
	n.setID(n.root, RootID)
	for g, a := range n.areas {
		if g == 1 {
			continue
		}
		upper := n.areas[a.parentGlobal]
		l, ok := upper.boundary[a.root]
		if !ok {
			return fmt.Errorf("core: area %d root %s not enumerated in upper area %d",
				g, a.root.Path(), a.parentGlobal)
		}
		a.rootLocal = l
		upper.rootByLocal[l] = g
		n.setID(a.root, ID{Global: g, Local: l, Root: true})
	}
	return nil
}

// enumerateArea performs steps 5–6 of Fig. 3 for one area: find the local
// maximal fan-out kᵢ and assign local indices via a kᵢ-ary tree. Interior
// (non-area-root) nodes receive their final identifiers here; boundary
// leaves (roots of lower areas) only occupy a local slot.
func (n *Numbering) enumerateArea(a *area) error {
	// Determine the local fan-out: the maximal structural fan-out over the
	// area's interior nodes (boundary leaves contribute no children here).
	a.fanout = 1
	var scan func(x *xmltree.Node)
	scan = func(x *xmltree.Node) {
		if x != a.root && n.areaRoots[x] {
			return
		}
		kids := x.StructuralChildren(n.opts.WithAttrs)
		if int64(len(kids)) > a.fanout {
			a.fanout = int64(len(kids))
		}
		for _, c := range kids {
			scan(c)
		}
	}
	scan(a.root)

	// Assign local indices.
	var assign func(x *xmltree.Node, local int64) error
	assign = func(x *xmltree.Node, local int64) error {
		a.locals[local] = x
		if x != a.root && n.areaRoots[x] {
			// Boundary leaf: a lower area continues below.
			if a.boundary == nil {
				a.boundary = make(map[*xmltree.Node]int64)
			}
			a.boundary[x] = local
			return nil
		}
		if x != a.root || a.global == 1 {
			// Interior node: final identifier. (The document root is both
			// the root of area 1 and an interior case; its ID is fixed to
			// RootID by the caller.)
			if x != n.root {
				n.setID(x, ID{Global: a.global, Local: local, Root: false})
			}
		}
		for j, c := range x.StructuralChildren(n.opts.WithAttrs) {
			cl, ok := childIndex(local, a.fanout, j)
			if !ok || cl > n.localLimit {
				return &overflowError{area: a.global, node: x}
			}
			if err := assign(c, cl); err != nil {
				return err
			}
		}
		return nil
	}
	a.sortedDirty = true
	return assign(a.root, 1)
}

// childIndex computes (i−1)·k + 2 + j with overflow detection.
func childIndex(i, k int64, j int) (int64, bool) {
	base := i - 1
	if base != 0 && base > (math.MaxInt64-int64(2+j))/k {
		return 0, false
	}
	return base*k + 2 + int64(j), true
}

func (n *Numbering) setID(node *xmltree.Node, id ID) {
	// During relabeling, the node's old identifier may already have been
	// claimed by another node; only remove the reverse entry if it still
	// points here.
	if old, ok := n.ids[node]; ok && n.nodes[old] == node {
		delete(n.nodes, old)
	}
	n.ids[node] = id
	n.nodes[id] = node
}

// Kappa returns the frame fan-out κ.
func (n *Numbering) Kappa() int64 { return n.kappa }

// K returns the global parameter table, sorted by global index (Fig. 5).
func (n *Numbering) K() []KRow {
	if n.epochMode() {
		rows := make([]KRow, 0, n.areaIdx.rows)
		n.areaIdx.forEach(func(a *area) { // chunks are already sorted by global index
			rows = append(rows, KRow{Global: a.global, RootLocal: a.rootLocal, Fanout: a.fanout})
		})
		return rows
	}
	rows := make([]KRow, 0, len(n.areas))
	for _, a := range n.areas {
		rows = append(rows, KRow{Global: a.global, RootLocal: a.rootLocal, Fanout: a.fanout})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Global < rows[j].Global })
	return rows
}

// AreaCount returns the number of UID-local areas.
func (n *Numbering) AreaCount() int {
	if n.epochMode() {
		return n.areaIdx.rows
	}
	return len(n.areas)
}

// Size returns the number of numbered nodes.
func (n *Numbering) Size() int {
	if n.epochMode() {
		return n.size
	}
	return len(n.ids)
}

// Root returns the numbered root element.
func (n *Numbering) Root() *xmltree.Node { return n.root }

// MaxLocalIndex returns the largest local index in use in any area — the
// identifier-magnitude metric of experiment E3 (each ruid component stays
// small because areas are small).
func (n *Numbering) MaxLocalIndex() int64 {
	var max int64
	n.forEachArea(func(a *area) {
		a.ensureSorted()
		if len(a.sortedLocals) > 0 {
			if v := a.sortedLocals[len(a.sortedLocals)-1]; v > max {
				max = v
			}
		}
	})
	return max
}

// MaxGlobalIndex returns the largest global index in use.
func (n *Numbering) MaxGlobalIndex() int64 {
	var max int64
	n.forEachArea(func(a *area) {
		if a.global > max {
			max = a.global
		}
	})
	return max
}

// Name implements scheme.Scheme.
func (n *Numbering) Name() string { return "ruid" }

// IDOf implements scheme.Scheme.
func (n *Numbering) IDOf(node *xmltree.Node) (scheme.ID, bool) {
	id, ok := n.RUID(node)
	if !ok {
		return nil, false
	}
	return id, true
}

// RUID returns the concrete identifier of a node, and false if the node is
// not numbered. On a master numbering this is a map lookup; on an epoch
// clone it reads the NodeNum stamp burned into the node at publication —
// the stamp is always current because any node whose identifier changes is
// freshly copied into the next epoch (never shared).
func (n *Numbering) RUID(node *xmltree.Node) (ID, bool) {
	if n.ids != nil {
		id, ok := n.ids[node]
		return id, ok
	}
	num := node.Num
	if num.G == 0 { // zero stamp: not numbered (global indices start at 1)
		return ID{}, false
	}
	return ID{Global: num.G, Local: num.L, Root: num.R}, true
}

// NodeOf implements scheme.Scheme.
func (n *Numbering) NodeOf(id scheme.ID) (*xmltree.Node, bool) {
	return n.NodeOfID(id.(ID))
}

// NodeOfID resolves a concrete identifier. On a master numbering this is a
// map lookup; on an epoch clone the identifier is resolved through the
// clustered per-area slot maps (the same structures the axis routines scan).
func (n *Numbering) NodeOfID(id ID) (*xmltree.Node, bool) {
	if n.nodes != nil {
		node, ok := n.nodes[id]
		return node, ok
	}
	return n.lookupByID(id)
}

// lookupByID resolves an identifier against the epoch-mode area index.
// Identifier shapes (see ID): an area root's identifier carries its own
// global index and its local slot in the upper area; an interior node's
// identifier carries its area's global index and its own slot.
func (n *Numbering) lookupByID(id ID) (*xmltree.Node, bool) {
	a, ok := n.krow(id.Global)
	if !ok {
		return nil, false
	}
	if id.Root {
		if id.Global == 1 {
			// The document root's identifier is exactly RootID.
			if id != RootID {
				return nil, false
			}
			return a.root, true
		}
		if a.rootLocal != id.Local {
			return nil, false
		}
		return a.root, true
	}
	// Interior identifier: slot 1 is the area's own root and boundary slots
	// hold lower-area roots — both carry Root identifiers, so an interior
	// lookup there must miss (exactly as the master nodes map would).
	if id.Local == 1 {
		return nil, false
	}
	if _, boundary := a.rootByLocal[id.Local]; boundary {
		return nil, false
	}
	node, ok := a.locals[id.Local]
	return node, ok
}
