package storage_test

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/document"
	"repro/internal/index"
	"repro/internal/storage"
	"repro/internal/xmltree"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func libraryXML() string {
	var sb strings.Builder
	sb.WriteString("<lib>")
	for s := 0; s < 4; s++ {
		sb.WriteString("<shelf>")
		for b := 0; b < 6; b++ {
			fmt.Fprintf(&sb, "<book><title>t%d.%d</title></book>", s, b)
		}
		sb.WriteString("</shelf>")
	}
	sb.WriteString("</lib>")
	return sb.String()
}

// checkRoundTrip encodes ix, decodes it back, and requires the reassembled
// index to hold byte-identical posting lists (same data, same skip table,
// same decoded identifiers) and the re-encoding to reproduce the snapshot
// bytes exactly.
func checkRoundTrip(t *testing.T, ix *index.NameIndex) []byte {
	t.Helper()
	enc, err := storage.EncodePostings(ix)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := storage.LoadPostings(bytes.NewReader(enc), ix.RUID())
	if err != nil {
		t.Fatal(err)
	}
	names := ix.Names()
	if got := loaded.Names(); len(got) != len(names) {
		t.Fatalf("loaded %d names, want %d", len(got), len(names))
	}
	for _, name := range names {
		orig, back := ix.Postings(name).List(), loaded.Postings(name).List()
		if back == nil {
			t.Fatalf("%q: lost in round trip", name)
		}
		if !bytes.Equal(orig.Data(), back.Data()) {
			t.Fatalf("%q: delta bytes differ after round trip", name)
		}
		os, bs := orig.Skips(), back.Skips()
		if len(os) != len(bs) {
			t.Fatalf("%q: %d blocks back, want %d", name, len(bs), len(os))
		}
		for i := range os {
			if os[i] != bs[i] {
				t.Fatalf("%q: skip %d differs: %+v vs %+v", name, i, bs[i], os[i])
			}
		}
		a, b := orig.AppendAll(nil), back.AppendAll(nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%q: posting %d differs", name, i)
			}
		}
	}
	reenc, err := storage.EncodePostings(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatal("re-encoding a loaded snapshot changed the bytes")
	}
	return enc
}

// TestPostingsSnapshotGolden pins the exact serialized form: any change to
// the snapshot layout must be deliberate (rerun with -update) because old
// snapshots stop loading.
func TestPostingsSnapshotGolden(t *testing.T) {
	d, err := document.OpenString(libraryXML(), document.Options{
		Partition: core.PartitionConfig{MaxAreaNodes: 12, AdjustFanout: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := checkRoundTrip(t, d.Snapshot().Index())
	golden := filepath.Join("testdata", "postings_golden.bin")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("snapshot bytes differ from golden (%d vs %d bytes); rerun with -update if the format change is intended", len(enc), len(want))
	}
}

// TestPostingsSnapshotUnderUpdates is the property test of the acceptance
// bar: after any randomized history of inserts and deletes flowing through
// the incremental ApplyDelta publication path, every published epoch's
// postings survive Save/Load byte-exactly.
func TestPostingsSnapshotUnderUpdates(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			d, err := document.OpenString(libraryXML(), document.Options{
				Partition: core.PartitionConfig{MaxAreaNodes: 12, AdjustFanout: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			r := rand.New(rand.NewSource(seed))
			next := 1000
			for step := 0; step < 60; step++ {
				shelf := fmt.Sprintf("/lib/shelf[%d]", r.Intn(4)+1)
				if r.Intn(3) == 0 {
					_, _ = d.Delete(shelf, 0)
				} else {
					book := xmltree.NewElement("book")
					title := xmltree.NewElement("title")
					title.AppendChild(xmltree.NewText(fmt.Sprintf("n%d", next)))
					book.AppendChild(title)
					next++
					if _, err := d.Insert(shelf, r.Intn(3), book); err != nil {
						if _, err := d.Insert(shelf, 0, book); err != nil {
							t.Fatalf("step %d: insert: %v", step, err)
						}
					}
				}
				checkRoundTrip(t, d.Snapshot().Index())
			}
		})
	}
}

// TestLoadPostingsRejectsCorruption flips bits and truncates a valid
// snapshot; every mutation must load as an error — or, when the flip lands
// in delta bytes without breaking structure, still pass full validation —
// and never panic.
func TestLoadPostingsRejectsCorruption(t *testing.T) {
	d, err := document.OpenString(libraryXML(), document.Options{
		Partition: core.PartitionConfig{MaxAreaNodes: 12, AdjustFanout: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	ix := d.Snapshot().Index()
	enc, err := storage.EncodePostings(ix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := storage.DecodePostings(enc[:0]); err == nil {
		t.Error("empty snapshot accepted")
	}
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := storage.DecodePostings(enc[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		mut := append([]byte(nil), enc...)
		mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
		lists, err := storage.DecodePostings(mut)
		if err != nil {
			continue
		}
		// Structurally valid despite the flip: document-order validation
		// against the real numbering is the second line of defense. Either
		// outcome is fine; both must be panic-free.
		_, _ = index.FromPostingLists(ix.RUID(), lists)
	}
}
