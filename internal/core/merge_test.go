package core

import (
	"testing"

	"repro/internal/xmltree"
)

// TestMergeDeltasScopes pins the merge algebra on hand-built deltas:
// deleted areas evict earlier dirty/row-moved entries, dirty supersedes
// row-moved, counts accumulate, Full is sticky.
func TestMergeDeltasScopes(t *testing.T) {
	d1 := &Delta{Dirty: []int64{2, 3}, RowMoved: []int64{5, 6}, InsertedCount: 4}
	d2 := &Delta{Dirty: []int64{3, 5}, DeletedAreas: []int64{6}, InsertedCount: 1,
		Dropped: []NodeID{{}, {}}}
	d3 := &Delta{Dirty: []int64{7}, DeletedAreas: []int64{3}}
	m := MergeDeltas([]*Delta{d1, d2, d3})

	has := func(s []int64, g int64) bool {
		for _, v := range s {
			if v == g {
				return true
			}
		}
		return false
	}
	if has(m.Dirty, 3) || has(m.Dirty, 6) {
		t.Fatalf("deleted areas leaked into Dirty: %v", m.Dirty)
	}
	if !has(m.Dirty, 2) || !has(m.Dirty, 5) || !has(m.Dirty, 7) {
		t.Fatalf("Dirty union incomplete: %v", m.Dirty)
	}
	if len(m.RowMoved) != 0 {
		// 5 went dirty in d2, 6 was deleted in d2.
		t.Fatalf("RowMoved should be empty: %v", m.RowMoved)
	}
	if !has(m.DeletedAreas, 3) || !has(m.DeletedAreas, 6) || len(m.DeletedAreas) != 2 {
		t.Fatalf("DeletedAreas = %v", m.DeletedAreas)
	}
	if m.InsertedCount != 5 || len(m.Dropped) != 2 {
		t.Fatalf("counts: inserted %d dropped %d", m.InsertedCount, len(m.Dropped))
	}
	if m.Full {
		t.Fatal("Full without any full member")
	}
	if !MergeDeltas([]*Delta{d1, {Full: true}}).Full {
		t.Fatal("Full not sticky")
	}
	if one := MergeDeltas([]*Delta{d1}); one != d1 {
		t.Fatal("single-delta batch must pass through unchanged")
	}
}

// TestMergedDeltaPublication drives the whole batch-publication pipeline at
// the core level: several updates are applied to the master one at a time,
// their deltas merged, and ONE incremental clone built over the
// pre-batch epoch. The result must stamp every node with exactly the
// identifiers a full clone of the post-batch master assigns.
func TestMergedDeltaPublication(t *testing.T) {
	master := xmltree.Recursive(2, 9) // ~1k elements
	n, err := Build(master, Options{Partition: PartitionConfig{MaxAreaNodes: 8}})
	if err != nil {
		t.Fatal(err)
	}

	// The pre-batch epoch, exactly as the facade holds it.
	prevTree, m2e := master.CloneWithMap()
	prev, err := n.CloneFor(prevTree, m2e)
	if err != nil {
		t.Fatal(err)
	}

	// The batch: inserts at scattered parents, a delete of a deep subtree
	// (drops whole descendant areas), and an insert later deleted again so
	// the count arithmetic has to cancel.
	top := master.DocumentElement().ChildElements("section")[0]
	sections := top.ChildElements("section")
	if len(sections) < 2 {
		t.Fatalf("fixture too small: %d sections", len(sections))
	}
	var deltas []*Delta
	apply := func(d *Delta, err error) *Delta {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		deltas = append(deltas, d)
		return d
	}
	_, d, err2 := n.InsertChildDelta(sections[0], 0, xmltree.NewElement("w1"))
	apply(d, err2)
	_, d, err2 = n.InsertChildDelta(sections[1], 1, xmltree.NewElement("w2"))
	apply(d, err2)
	// Delete a pre-existing deep subtree: sections[1]'s first section child.
	victimPos := -1
	for i, c := range sections[1].Children {
		if c.Name == "section" {
			victimPos = i
			break
		}
	}
	if victimPos < 0 {
		t.Fatal("no deep subtree to delete")
	}
	_, d, err2 = n.DeleteChildDelta(sections[1], victimPos)
	apply(d, err2)
	// Insert then delete the same child: nets out of every count.
	_, d, err2 = n.InsertChildDelta(sections[0], 0, xmltree.NewElement("ephemeral"))
	apply(d, err2)
	_, d, err2 = n.DeleteChildDelta(sections[0], 0)
	apply(d, err2)

	merged := MergeDeltas(deltas)
	if merged.Full {
		t.Fatal("batch unexpectedly healed an overflow; pick smaller mutations")
	}

	copySet := n.CopySet(merged)
	tree, copies, err := master.CloneAlong(copySet, m2e)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := n.CloneDelta(prev, merged, copies, m2e)
	if err != nil {
		t.Fatal(err)
	}

	// Oracle: a full clone of the post-batch master.
	fullTree, fullMap := master.CloneWithMap()
	oracle, err := n.CloneFor(fullTree, fullMap)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Size() != oracle.Size() {
		t.Fatalf("size: incremental %d, full %d", inc.Size(), oracle.Size())
	}

	// Both clones mirror the master's shape; their stamps must agree node
	// for node. Shared subtrees keep the pre-batch stamps, which are only
	// correct if the merged CopySet really covered every relabel.
	var walk func(a, b *xmltree.Node)
	walk = func(a, b *xmltree.Node) {
		if a.Name != b.Name || len(a.Children) != len(b.Children) {
			t.Fatalf("shape divergence at %s vs %s", a.Path(), b.Path())
		}
		if a.Kind == xmltree.Element && a.Num != b.Num {
			t.Fatalf("stamp mismatch at %s: incremental %+v, full %+v", a.Path(), a.Num, b.Num)
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i])
		}
	}
	walk(tree, fullTree)

	// The merged publication must also answer axes identically.
	ids := make([]ID, 0, 8)
	fullTree.Walk(func(x *xmltree.Node) bool {
		if x.Kind == xmltree.Element && len(ids) < 8 {
			if id, ok := oracle.RUID(x); ok {
				ids = append(ids, id)
			}
		}
		return true
	})
	for _, id := range ids {
		a := inc.Children(id)
		b := oracle.Children(id)
		if len(a) != len(b) {
			t.Fatalf("children(%v): %d vs %d", id, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("children(%v)[%d]: %v vs %v", id, i, a[i], b[i])
			}
		}
	}
}
