// Package document is the serving facade over the paper's machinery: one
// Document owns the parsed XML tree, its 2-level ruid numbering, the
// element-name index, the DataGuide structural summary and the cost-based
// query planner, behind a single Open/Query/Insert/Delete/Snapshot API —
// callers no longer hand-assemble xmltree + core + index + query.
//
// # Concurrency model
//
// The Document is safe for concurrent use by any number of readers and
// writers, with snapshot isolation:
//
//   - Readers pin an immutable epoch with Snapshot (or implicitly through
//     Query). An epoch bundles a private copy of the tree, a copy-on-write
//     clone of the numbering (κ, the table K, the per-area clustered slot
//     lists) and the index postings; nothing in a published epoch is ever
//     mutated again, so readers share epochs freely without locks.
//   - Writers serialize on an internal mutex and mutate the writer-private
//     master tree. Identifier maintenance on the master is the paper's
//     incremental §3.2 algorithm: an insert or delete re-enumerates only
//     the affected UID-local area (UpdateStats reports the scope), so
//     identifiers outside the update area survive across epochs. After the
//     areas are rebuilt, the writer publishes the next epoch with one
//     atomic pointer store.
//
// A reader holding an old epoch keeps querying it consistently — queries
// racing updates observe either the pre- or post-update document, never a
// mix. Epoch publication copies the document (O(n)); the area-confined
// relabeling statistics still reflect the paper's update-scope claims.
package document

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/index"
	"repro/internal/query"
	"repro/internal/scheme"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Options configure Open.
type Options struct {
	// Partition controls UID-local area selection for the ruid numbering.
	// The zero value selects a serving-oriented default (area budget 64,
	// §2.3 fan-out adjustment on).
	Partition core.PartitionConfig
	// WithAttrs numbers attribute nodes too (§4: "all components of XML
	// document trees").
	WithAttrs bool
}

func (o Options) coreOptions() core.Options {
	p := o.Partition
	if p.MaxAreaNodes == 0 {
		p = core.PartitionConfig{MaxAreaNodes: 64, AdjustFanout: true}
	}
	return core.Options{Partition: p, WithAttrs: o.WithAttrs}
}

// Document is a numbered XML document that serves concurrent queries while
// accepting structural updates. Create one with Open, OpenString or
// FromTree; the zero value is not usable.
type Document struct {
	opts core.Options

	mu     sync.Mutex    // serializes writers and epoch publication
	master *xmltree.Node // writer-private tree; never exposed to readers
	num    *core.Numbering

	epoch uint64
	cur   atomic.Pointer[Snapshot]
}

// Snapshot is one immutable epoch of a Document: a consistent bundle of
// tree, numbering, name index, DataGuide and planner. Snapshots are safe
// for concurrent use and stay valid (and unchanged) after later updates.
type Snapshot struct {
	epoch   uint64
	tree    *xmltree.Node
	num     *core.Numbering
	planner *query.Planner
}

// Open parses an XML document from r and numbers it.
func Open(r io.Reader, opts Options) (*Document, error) {
	doc, err := xmltree.Parse(r)
	if err != nil {
		return nil, err
	}
	return FromTree(doc, opts)
}

// OpenString parses an XML document held in a string and numbers it.
func OpenString(src string, opts Options) (*Document, error) {
	doc, err := xmltree.ParseString(src)
	if err != nil {
		return nil, err
	}
	return FromTree(doc, opts)
}

// FromTree numbers an already-parsed tree. The Document takes ownership of
// doc: the caller must not read or mutate it afterwards (readers work on
// snapshot copies; writers on the master).
func FromTree(doc *xmltree.Node, opts Options) (*Document, error) {
	copts := opts.coreOptions()
	num, err := core.Build(doc, copts)
	if err != nil {
		return nil, err
	}
	d := &Document{opts: copts, master: doc, num: num}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d, d.publishLocked()
}

// publishLocked clones the master tree, re-points a copy of the numbering
// at the clone and atomically installs the bundle as the next epoch.
// Callers hold d.mu.
func (d *Document) publishLocked() error {
	tree, mapping := d.master.CloneWithMap()
	num, err := d.num.CloneFor(tree, mapping)
	if err != nil {
		return err
	}
	d.epoch++
	d.cur.Store(&Snapshot{
		epoch:   d.epoch,
		tree:    tree,
		num:     num,
		planner: query.New(tree, num),
	})
	return nil
}

// Snapshot pins the current epoch. The returned snapshot never changes;
// queries on it are wait-free with respect to writers.
func (d *Document) Snapshot() *Snapshot { return d.cur.Load() }

// Query plans and executes an XPath query against the current epoch,
// returning the result node-set in document order (nodes belong to that
// epoch's immutable tree) and the plan that produced it.
func (d *Document) Query(q string) ([]*xmltree.Node, query.Plan, error) {
	return d.Snapshot().Query(q)
}

// Insert attaches child (possibly a whole subtree) as the pos-th child of
// the first element matched by parentPath (an XPath location path,
// evaluated in document order against the latest state) and publishes a
// new epoch. It returns the paper's §3.2 relabeling statistics. The
// Document takes ownership of child.
func (d *Document) Insert(parentPath string, pos int, child *xmltree.Node) (scheme.UpdateStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	parent, err := d.findOneLocked(parentPath)
	if err != nil {
		return scheme.UpdateStats{}, err
	}
	st, err := d.num.InsertChild(parent, pos, child)
	if err != nil {
		return st, err
	}
	return st, d.publishLocked()
}

// Delete removes (cascading) the pos-th child of the first element matched
// by parentPath and publishes a new epoch.
func (d *Document) Delete(parentPath string, pos int) (scheme.UpdateStats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	parent, err := d.findOneLocked(parentPath)
	if err != nil {
		return scheme.UpdateStats{}, err
	}
	st, err := d.num.DeleteChild(parent, pos)
	if err != nil {
		return st, err
	}
	return st, d.publishLocked()
}

// findOneLocked resolves a writer's target path against the master tree
// using pointer navigation (the master numbering may be mid-flight between
// epochs, so identifiers are not used here).
func (d *Document) findOneLocked(path string) (*xmltree.Node, error) {
	engine := xpath.NewEngine(d.master, xpath.PointerNavigator{})
	res, err := engine.Query(path)
	if err != nil {
		return nil, err
	}
	for _, n := range res {
		if n.Kind == xmltree.Element {
			return n, nil
		}
	}
	return nil, fmt.Errorf("document: no element matches %q", path)
}

// Stats summarizes the current epoch.
type Stats struct {
	Epoch int   // epochs published so far (1 = the initial one)
	Nodes int   // numbered nodes
	Areas int   // UID-local areas (rows of K)
	Kappa int64 // frame fan-out κ
	Names int   // distinct indexed element names
}

// Stats returns a summary of the current epoch.
func (d *Document) Stats() Stats {
	s := d.Snapshot()
	return Stats{
		Epoch: int(s.epoch),
		Nodes: s.num.Size(),
		Areas: s.num.AreaCount(),
		Kappa: s.num.Kappa(),
		Names: len(s.Index().Names()),
	}
}

// Epoch returns the snapshot's epoch number (monotonically increasing per
// Document, starting at 1).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Tree returns the snapshot's immutable document tree. Callers must not
// mutate it (it is shared by every reader of this epoch).
func (s *Snapshot) Tree() *xmltree.Node { return s.tree }

// Numbering returns the snapshot's ruid numbering.
func (s *Snapshot) Numbering() *core.Numbering { return s.num }

// Index returns the snapshot's element-name index.
func (s *Snapshot) Index() *index.NameIndex { return s.planner.Index() }

// Guide returns the snapshot's DataGuide structural summary.
func (s *Snapshot) Guide() *dataguide.Guide { return s.planner.Guide() }

// Query plans and executes an XPath query against this epoch, returning
// the result node-set in document order and the plan used. Safe for
// concurrent use.
func (s *Snapshot) Query(q string) ([]*xmltree.Node, query.Plan, error) {
	return s.planner.Run(q)
}

// Plan parses the query and reports the strategy the planner would choose,
// without executing it.
func (s *Snapshot) Plan(q string) (query.Plan, error) {
	return s.planner.Plan(q)
}
