// Package budget enforces per-query resource limits inside the engine's hot
// loops. A serving process cannot let one expensive query monopolize the
// machine: the multi-document server admits a query with a Budget — a cap on
// postings decoded, a cap on identifier rows materialized, and a wall-clock
// deadline carried by a context.Context — and the join kernels themselves
// check the budget as they run, the way a bytecode VM threads allocation
// limits through every interpreter step. A query that exceeds any limit
// terminates early inside the kernel it is running and surfaces the matching
// sentinel error (ErrPostingsBudget, ErrResultBudget, or the context's own
// error for deadlines), never a partial result presented as a complete one.
//
// The enforcement point is a Meter: one per query, shared by every shard
// worker of that query's operations. All methods are safe for concurrent
// use, and — following the internal/obs convention — nil-safe: a nil *Meter
// admits everything at the cost of one branch, so the unbudgeted path stays
// allocation- and atomics-free.
package budget

import (
	"context"
	"errors"
	"sync/atomic"
)

// Sentinel errors, in the mold of core.ErrOverflow: returned wrapped, tested
// with errors.Is. Deadline exhaustion is reported as the context's error
// (context.DeadlineExceeded or context.Canceled), not a third sentinel.
var (
	// ErrPostingsBudget reports that a query decoded or scanned more
	// postings than its budget allows.
	ErrPostingsBudget = errors.New("budget: postings limit exceeded")
	// ErrResultBudget reports that a query materialized more identifier
	// rows than its budget allows.
	ErrResultBudget = errors.New("budget: result limit exceeded")
)

// Limits is the declarative budget for one query. Zero fields are unlimited,
// so the zero Limits admits everything (modulo the context's deadline).
type Limits struct {
	// MaxPostings caps the postings the query may decode or scan across all
	// of its join stages: every block admitted by the seek kernels' skip
	// test, every probe-side identifier materialized, every slice-backed
	// intermediate fed back into a kernel. It is the query's I/O-shaped
	// work bound.
	MaxPostings int64
	// MaxResults caps the identifier rows the query may materialize:
	// per-stage join outputs and the final result set. It is the query's
	// memory-shaped bound.
	MaxResults int64
}

// Unlimited reports whether the limits constrain nothing.
func (l Limits) Unlimited() bool { return l.MaxPostings <= 0 && l.MaxResults <= 0 }

// Meter enforces one query's Limits and deadline. Construct with NewMeter;
// a nil *Meter is the no-budget meter (every charge admitted, Err nil).
//
// The first limit to trip wins and is latched: every later charge on any
// goroutine is refused, which is what stops a sharded operation — each
// worker halts at its next charge point, typically one posting block later.
type Meter struct {
	ctx         context.Context
	maxPostings int64
	maxResults  int64
	postings    atomic.Int64
	results     atomic.Int64
	tripped     atomic.Pointer[error]
}

// NewMeter builds the meter for one query. ctx carries the deadline and is
// sampled at every charge point (block-run granularity in the kernels, so a
// deadline is honored within ~one block decode). A nil ctx meters only the
// explicit limits.
func NewMeter(ctx context.Context, l Limits) *Meter {
	return &Meter{ctx: ctx, maxPostings: l.MaxPostings, maxResults: l.MaxResults}
}

// trip latches err as the meter's verdict. The first trip wins.
func (m *Meter) trip(err error) {
	m.tripped.CompareAndSwap(nil, &err)
}

// checkCtx samples the deadline; reports false when the context is done.
func (m *Meter) checkCtx() bool {
	if m.ctx != nil {
		if err := m.ctx.Err(); err != nil {
			m.trip(err)
			return false
		}
	}
	return true
}

// ChargePostings accounts for n postings about to be decoded or scanned and
// reports whether the query may proceed. Once it returns false — for any
// reason, on any goroutine — every subsequent charge returns false too, so
// kernels use it as their early-termination test. Consumption is counted
// even when the corresponding limit is unlimited: a metered-but-uncapped
// query still reports what it spent.
func (m *Meter) ChargePostings(n int) bool {
	if m == nil {
		return true
	}
	if m.tripped.Load() != nil {
		return false
	}
	if m.postings.Add(int64(n)) > m.maxPostings && m.maxPostings > 0 {
		m.trip(ErrPostingsBudget)
		return false
	}
	return m.checkCtx()
}

// ChargeResults accounts for n identifier rows just materialized and reports
// whether the query may proceed.
func (m *Meter) ChargeResults(n int) bool {
	if m == nil {
		return true
	}
	if m.tripped.Load() != nil {
		return false
	}
	if m.results.Add(int64(n)) > m.maxResults && m.maxResults > 0 {
		m.trip(ErrResultBudget)
		return false
	}
	return m.checkCtx()
}

// Check samples the deadline and the latch without charging anything — the
// entry test before a pipeline stage or a navigation fallback.
func (m *Meter) Check() bool {
	if m == nil {
		return true
	}
	if m.tripped.Load() != nil {
		return false
	}
	return m.checkCtx()
}

// Err returns the sentinel that tripped the meter, or nil while the query is
// within budget. Test with errors.Is against ErrPostingsBudget,
// ErrResultBudget, context.DeadlineExceeded or context.Canceled.
func (m *Meter) Err() error {
	if m == nil {
		return nil
	}
	if p := m.tripped.Load(); p != nil {
		return *p
	}
	return nil
}

// Exhausted reports whether any limit has tripped.
func (m *Meter) Exhausted() bool {
	return m != nil && m.tripped.Load() != nil
}

// Postings returns the postings charged so far (0 on nil).
func (m *Meter) Postings() int64 {
	if m == nil {
		return 0
	}
	return m.postings.Load()
}

// Results returns the result rows charged so far (0 on nil).
func (m *Meter) Results() int64 {
	if m == nil {
		return 0
	}
	return m.results.Load()
}
