package core

// Group-commit support: a batch of structural updates is applied to the
// master numbering one mutation at a time (each confined to its update
// area, exactly as §3.2 prescribes), but published as ONE epoch. The
// publication machinery — CopySet, CloneDelta, the area-index patch — then
// needs the union of the batch's update scopes, which MergeDeltas
// computes.

// MergeDeltas folds the per-mutation deltas of one batch, in application
// order, into a single delta describing the union of their scopes:
//
//   - Dirty is the union of re-enumerated areas, excluding areas a later
//     mutation deleted (their interiors no longer exist on the master);
//   - RowMoved is the union of moved K rows, excluding areas that were
//     re-enumerated or deleted (a dirty rebuild supersedes a row move);
//   - DeletedAreas is the union of vanished areas — updates never create
//     areas outside a full renumber, so an area deleted mid-batch can not
//     reappear and the union is exact;
//   - InsertedCount and Dropped accumulate so the epoch's size arithmetic
//     stays balanced (a node inserted and then deleted inside one batch
//     contributes +1 and −1 and nets out);
//   - Full is sticky: one overflow heal anywhere in the batch forces the
//     full-clone publication path for the whole batch.
//
// Relabels, Inserted, Removed and Parent are left zero: they describe a
// single mutation and have no faithful union — group publication derives
// per-name index edits and guide updates from the per-mutation deltas
// directly (see the document facade), and the merged delta is consumed
// only by CopySet, CloneDelta and the area-index patch, none of which read
// those fields.
//
// A one-element batch returns its sole delta unchanged, so the
// single-mutation publication path is byte-for-byte the pre-batching one.
func MergeDeltas(ds []*Delta) *Delta {
	if len(ds) == 1 {
		return ds[0]
	}
	merged := &Delta{}
	deleted := make(map[int64]bool)
	dirty := make(map[int64]bool)
	moved := make(map[int64]bool)
	for _, d := range ds {
		if d == nil {
			continue
		}
		if d.Full {
			merged.Full = true
		}
		for _, g := range d.DeletedAreas {
			deleted[g] = true
			delete(dirty, g)
			delete(moved, g)
		}
		for _, g := range d.Dirty {
			if !deleted[g] {
				dirty[g] = true
			}
		}
		for _, g := range d.RowMoved {
			if !deleted[g] && !dirty[g] {
				moved[g] = true
			}
		}
		merged.InsertedCount += d.InsertedCount
		merged.Dropped = append(merged.Dropped, d.Dropped...)
	}
	// A row move recorded before the area went dirty is superseded by the
	// dirty rebuild (the rebuilt slot map carries the final row).
	for g := range dirty {
		delete(moved, g)
	}
	for g := range dirty {
		merged.Dirty = append(merged.Dirty, g)
	}
	for g := range moved {
		merged.RowMoved = append(merged.RowMoved, g)
	}
	for g := range deleted {
		merged.DeletedAreas = append(merged.DeletedAreas, g)
	}
	return merged
}
