package nestedint_test

import (
	"errors"
	"testing"

	"repro/internal/nestedint"
	"repro/internal/scheme"
	"repro/internal/scheme/schemetest"
	"repro/internal/xmltree"
)

func build(t *testing.T, doc *xmltree.Node) *nestedint.Numbering {
	t.Helper()
	n, err := nestedint.Build(doc)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

// TestConformance runs the shared conformance suite (identity, parent,
// ancestry, order, all seven axes) over the standard corpus.
func TestConformance(t *testing.T) {
	schemetest.Run(t, func(t *testing.T, doc *xmltree.Node) scheme.Scheme {
		return build(t, doc)
	})
}

// TestUpdateSoak replays randomized insert/delete workloads, validating the
// whole numbering after every operation.
func TestUpdateSoak(t *testing.T) {
	soak := func(t *testing.T, doc *xmltree.Node) scheme.Updatable {
		return build(t, doc)
	}
	schemetest.RunUpdateSoak(t, soak, 120, 1)
	schemetest.RunUpdateSoak(t, soak, 120, 42)
}

// TestGeneratorFamilies pins conformance on the three bake-off generator
// families the adaptive picker distinguishes.
func TestGeneratorFamilies(t *testing.T) {
	docs := map[string]*xmltree.Node{
		"skewed":    xmltree.Skewed(9, 2, 8),
		"recursive": xmltree.Recursive(2, 6),
		"xmark":     xmltree.XMark(1, 7),
	}
	for name, doc := range docs {
		t.Run(name, func(t *testing.T) {
			n := build(t, doc)
			validateAgainstPointers(t, n, doc)
		})
	}
}

func validateAgainstPointers(t *testing.T, n *nestedint.Numbering, doc *xmltree.Node) {
	t.Helper()
	root := doc.DocumentElement()
	nodes := root.Nodes()
	if n.Size() != len(nodes) {
		t.Fatalf("numbered %d nodes, tree has %d", n.Size(), len(nodes))
	}
	for _, d := range nodes {
		id, ok := n.IDOf(d)
		if !ok {
			t.Fatalf("node %s not numbered", d.Path())
		}
		back, ok := n.NodeOf(id)
		if !ok || back != d {
			t.Fatalf("NodeOf(IDOf(%s)) mismatch", d.Path())
		}
		if pid, ok := n.Parent(id); ok {
			p, ok2 := n.NodeOf(pid)
			if !ok2 || p != d.Parent {
				t.Fatalf("Parent of %s wrong", d.Path())
			}
		} else if d != root {
			t.Fatalf("non-root %s has no parent", d.Path())
		}
	}
}

// TestParentIsArithmetic checks the UID-family property: Parent is computed
// from the rational alone, through the continued-fraction codec, and agrees
// with the tree.
func TestParentIsArithmetic(t *testing.T) {
	doc := xmltree.Recursive(3, 4)
	n := build(t, doc)
	root := doc.DocumentElement()
	for _, d := range root.Nodes() {
		if d == root {
			continue
		}
		id, _ := n.IDOf(d)
		nid := id.(nestedint.ID)
		// Reconstruct the parent label purely from num/den.
		path, err := nestedint.DecodePath(nid.Num, nid.Den)
		if err != nil {
			t.Fatalf("DecodePath(%s): %v", nid, err)
		}
		pnum, pden, err := nestedint.EncodePath(path[:len(path)-1])
		if err != nil {
			t.Fatalf("EncodePath parent of %s: %v", nid, err)
		}
		pid, ok := n.Parent(id)
		if !ok {
			t.Fatalf("Parent(%s) = none", nid)
		}
		got := pid.(nestedint.ID)
		if got.Num != pnum || got.Den != pden {
			t.Fatalf("Parent(%s) = %s, want %d/%d", nid, got, pnum, pden)
		}
	}
}

// TestInsertRelabelScope pins the documented update cost: inserting as the
// first child relabels exactly the following siblings' subtrees.
func TestInsertRelabelScope(t *testing.T) {
	doc := xmltree.Balanced(3, 2) // root with 3 children, each with 3 leaves
	n := build(t, doc)
	root := doc.DocumentElement()
	st, err := n.InsertChild(root, 0, xmltree.NewElement("new"))
	if err != nil {
		t.Fatalf("InsertChild: %v", err)
	}
	// All 3 original subtrees (4 nodes each) shift rank; root keeps "1".
	if st.Relabeled != 12 {
		t.Fatalf("Relabeled = %d, want 12", st.Relabeled)
	}
	if st.FullRebuild || st.AreaRebuilds != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	// Appending as the last child relabels nothing.
	st, err = n.InsertChild(root, len(root.Children), xmltree.NewElement("tail"))
	if err != nil {
		t.Fatalf("InsertChild: %v", err)
	}
	if st.Relabeled != 0 {
		t.Fatalf("append Relabeled = %d, want 0", st.Relabeled)
	}
}

// TestOverflowRollback drives a document past the int64 label budget and
// checks the relabel-on-overflow policy: the failing update reports
// ErrOverflow and leaves both tree and numbering exactly as they were.
func TestOverflowRollback(t *testing.T) {
	// A chain of first children makes labels grow like Fibonacci numbers;
	// int64 holds about 90 of those.
	doc := xmltree.Linear(80)
	n := build(t, doc)
	// Walk to the deepest node.
	deepest := doc.DocumentElement()
	for len(deepest.Children) > 0 {
		deepest = deepest.Children[0]
	}
	var overflowed bool
	for i := 0; i < 40; i++ {
		before := n.Size()
		child := xmltree.NewElement("d")
		_, err := n.InsertChild(deepest, 0, child)
		if err != nil {
			if !isOverflow(err) {
				t.Fatalf("unexpected error: %v", err)
			}
			// Rolled back: tree unchanged, numbering still valid.
			if len(deepest.Children) != 0 {
				t.Fatalf("tree not rolled back: %d children", len(deepest.Children))
			}
			if n.Size() != before {
				t.Fatalf("numbering changed on failed insert: %d -> %d", before, n.Size())
			}
			overflowed = true
			break
		}
		deepest = child
	}
	if !overflowed {
		t.Fatal("expected ErrOverflow before 40 extra levels")
	}
}

func isOverflow(err error) bool {
	return errors.Is(err, nestedint.ErrOverflow)
}
