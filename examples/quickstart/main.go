// Quickstart: parse a document, build its 2-level ruid, inspect the
// identifiers and the global parameter table K, and navigate the tree by
// identifier arithmetic alone — the core workflow of the paper.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/xmltree"
)

const src = `<library>
  <book id="b1">
    <title>A Structural Numbering Scheme for XML Data</title>
    <author>Kha</author><author>Yoshikawa</author><author>Uemura</author>
  </book>
  <book id="b2">
    <title>Index Structures for Structured Documents</title>
    <author>Lee</author>
  </book>
</library>`

func main() {
	doc, err := xmltree.ParseString(src)
	if err != nil {
		log.Fatal(err)
	}

	// Build the 2-level ruid. The partition budget bounds how many nodes
	// one UID-local area enumerates; AdjustFanout applies the §2.3 trick.
	n, err := core.Build(doc, core.Options{
		Partition: core.PartitionConfig{MaxAreaNodes: 4, AdjustFanout: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kappa = %d, %d UID-local areas, %d numbered nodes\n\n",
		n.Kappa(), n.AreaCount(), n.Size())

	fmt.Println("identifiers (global, local, root):")
	doc.DocumentElement().Walk(func(x *xmltree.Node) bool {
		id, _ := n.RUID(x)
		label := x.Name
		if x.Kind == xmltree.Text {
			label = fmt.Sprintf("%q", truncate(x.Data, 24))
		}
		fmt.Printf("  %-14s %s\n", id, label)
		return true
	})

	fmt.Println("\nglobal parameter table K (global, local, fan-out):")
	for _, row := range n.K() {
		fmt.Printf("  %s\n", row)
	}

	// Navigate upward by pure identifier arithmetic: pick the deepest text
	// node and climb to the root with rparent() — no tree access at all.
	var deepest *xmltree.Node
	doc.DocumentElement().Walk(func(x *xmltree.Node) bool {
		if deepest == nil || x.Depth() > deepest.Depth() {
			deepest = x
		}
		return true
	})
	id, _ := n.RUID(deepest)
	fmt.Printf("\nancestor chain of %s by rparent() alone:\n", id)
	for {
		fmt.Printf("  %s", id)
		if node, ok := n.NodeOfID(id); ok {
			fmt.Printf("  <- %s", node.Name)
		}
		fmt.Println()
		p, ok, err := n.RParent(id)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		id = p
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
