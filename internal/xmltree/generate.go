package xmltree

import (
	"fmt"
	"math/rand"
)

// The generators in this file produce the deterministic synthetic documents
// used throughout the test suite and the benchmark harness. The paper
// evaluated "several sample XML documents" without naming them; these
// generators parameterize the topological properties the paper's analysis
// depends on (depth, fan-out, skew, recursion) and additionally imitate the
// shapes of three classic XML corpora (DBLP, XMark auctions, Shakespeare
// plays). All generators are pure functions of their parameters.

// Balanced returns a document whose root element heads a perfectly balanced
// tree: every internal element has exactly fanout element children and the
// tree is depth edges tall. Element names encode the level ("n0".."nD").
func Balanced(fanout, depth int) *Node {
	if fanout < 1 {
		panic("xmltree: Balanced fanout must be >= 1")
	}
	doc := NewDocument()
	var build func(level int) *Node
	build = func(level int) *Node {
		el := NewElement(fmt.Sprintf("n%d", level))
		if level < depth {
			for i := 0; i < fanout; i++ {
				c := build(level + 1)
				c.Parent = el
				el.Children = append(el.Children, c)
			}
		}
		return el
	}
	doc.AppendChild(build(0))
	return doc
}

// Linear returns a document that is a single chain of depth+1 elements —
// the extreme deep-and-narrow case. With the original UID, identifier
// magnitude on such documents is k^depth even though only depth+1 real
// nodes exist.
func Linear(depth int) *Node {
	doc := NewDocument()
	cur := NewElement("n0")
	doc.AppendChild(cur)
	for i := 1; i <= depth; i++ {
		c := NewElement(fmt.Sprintf("n%d", i))
		cur.AppendChild(c)
		cur = c
	}
	return doc
}

// Skewed returns a document with one wide node (wideFanout children under
// the root) while every other internal node has narrowFanout children,
// repeated to the given depth. It is the worst case for the original UID's
// virtual-node padding: the single wide node forces the global k up for the
// whole document.
func Skewed(wideFanout, narrowFanout, depth int) *Node {
	doc := NewDocument()
	root := NewElement("root")
	doc.AppendChild(root)
	for i := 0; i < wideFanout; i++ {
		root.AppendChild(NewElement("wide"))
	}
	// One narrow spine hanging off the first wide child.
	cur := root.Children[0]
	for d := 0; d < depth; d++ {
		for i := 0; i < narrowFanout; i++ {
			cur.AppendChild(NewElement(fmt.Sprintf("deep%d", d)))
		}
		cur = cur.Children[0]
	}
	return doc
}

// RandomConfig parameterizes Random document generation.
type RandomConfig struct {
	Nodes     int     // total element count (>= 1)
	MaxFanout int     // cap on children per node (>= 1)
	DepthBias float64 // 0..1: probability mass pushed toward deep attachment
	Seed      int64
	TextLeaf  bool // attach a text node to childless elements at the end
}

// Random returns a document with exactly cfg.Nodes elements attached at
// uniformly random (or depth-biased) positions, respecting MaxFanout.
// The result is a deterministic function of cfg.
func Random(cfg RandomConfig) *Node {
	if cfg.Nodes < 1 {
		panic("xmltree: Random needs at least one node")
	}
	if cfg.MaxFanout < 1 {
		panic("xmltree: Random MaxFanout must be >= 1")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	doc := NewDocument()
	root := NewElement("e0")
	doc.AppendChild(root)
	// open holds nodes that can still accept children.
	open := []*Node{root}
	for i := 1; i < cfg.Nodes; i++ {
		var idx int
		if cfg.DepthBias > 0 && rng.Float64() < cfg.DepthBias {
			// favour recently created nodes => deeper trees
			idx = len(open) - 1 - rng.Intn(1+len(open)/4)
			if idx < 0 {
				idx = 0
			}
		} else {
			idx = rng.Intn(len(open))
		}
		p := open[idx]
		c := NewElement(fmt.Sprintf("e%d", rng.Intn(16)))
		p.AppendChild(c)
		open = append(open, c)
		if len(p.Children) >= cfg.MaxFanout {
			open[idx] = open[len(open)-1]
			open = open[:len(open)-1]
		}
	}
	if cfg.TextLeaf {
		root.Walk(func(d *Node) bool {
			if d.Kind == Element && len(d.Children) == 0 {
				d.AppendChild(NewText(fmt.Sprintf("t%d", rng.Intn(1000))))
			}
			return true
		})
	}
	return doc
}

// Recursive returns a document with a high degree of recursion: section
// elements nested inside section elements, the case the paper singles out
// ("trees having a high degree of recursion", §5 observation 1).
// Each section has width child sections until depth is exhausted, plus a
// title and a paragraph.
func Recursive(width, depth int) *Node {
	doc := NewDocument()
	var build func(level int) *Node
	build = func(level int) *Node {
		sec := NewElement("section")
		title := NewElement("title")
		title.AppendChild(NewText(fmt.Sprintf("section level %d", level)))
		sec.AppendChild(title)
		sec.AppendChild(NewElement("para"))
		if level < depth {
			for i := 0; i < width; i++ {
				c := build(level + 1)
				c.Parent = sec
				sec.Children = append(sec.Children, c)
			}
		}
		return sec
	}
	book := NewElement("book")
	doc.AppendChild(book)
	c := build(0)
	c.Parent = book
	book.Children = append(book.Children, c)
	return doc
}

// DBLP returns a bibliography-shaped document: a flat, very wide root with
// nArticles article records of small uniform fan-out. This is the
// shallow-and-wide extreme (large k, tiny depth).
func DBLP(nArticles int, seed int64) *Node {
	rng := rand.New(rand.NewSource(seed))
	doc := NewDocument()
	dblp := NewElement("dblp")
	doc.AppendChild(dblp)
	for i := 0; i < nArticles; i++ {
		art := NewElement("article")
		art.SetAttr("key", fmt.Sprintf("journals/x/A%d", i))
		for j := 0; j <= rng.Intn(3); j++ {
			a := NewElement("author")
			a.AppendChild(NewText(fmt.Sprintf("Author %d-%d", i, j)))
			art.AppendChild(a)
		}
		t := NewElement("title")
		t.AppendChild(NewText(fmt.Sprintf("On the Numbering of Trees, Part %d", i)))
		art.AppendChild(t)
		y := NewElement("year")
		y.AppendChild(NewText(fmt.Sprintf("%d", 1990+rng.Intn(12))))
		art.AppendChild(y)
		dblp.AppendChild(art)
	}
	return doc
}

// XMark returns an auction-site-shaped document modeled on the XMark
// benchmark: regions with items, people, and open auctions with nested
// description structure. scale controls the item/person counts
// (scale 1 ≈ a few hundred elements).
func XMark(scale int, seed int64) *Node {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	doc := NewDocument()
	site := NewElement("site")
	doc.AppendChild(site)

	regions := NewElement("regions")
	site.AppendChild(regions)
	regionNames := []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	itemID := 0
	for _, rn := range regionNames {
		region := NewElement(rn)
		regions.AppendChild(region)
		for i := 0; i < 4*scale; i++ {
			item := NewElement("item")
			item.SetAttr("id", fmt.Sprintf("item%d", itemID))
			itemID++
			nm := NewElement("name")
			nm.AppendChild(NewText(fmt.Sprintf("item %d", itemID)))
			item.AppendChild(nm)
			desc := NewElement("description")
			par := NewElement("parlist")
			for p := 0; p <= rng.Intn(3); p++ {
				li := NewElement("listitem")
				tx := NewElement("text")
				tx.AppendChild(NewText(fmt.Sprintf("lorem %d", rng.Intn(100))))
				li.AppendChild(tx)
				par.AppendChild(li)
			}
			desc.AppendChild(par)
			item.AppendChild(desc)
			region.AppendChild(item)
		}
	}

	people := NewElement("people")
	site.AppendChild(people)
	for i := 0; i < 10*scale; i++ {
		person := NewElement("person")
		person.SetAttr("id", fmt.Sprintf("person%d", i))
		nm := NewElement("name")
		nm.AppendChild(NewText(fmt.Sprintf("Person %d", i)))
		person.AppendChild(nm)
		em := NewElement("emailaddress")
		em.AppendChild(NewText(fmt.Sprintf("mailto:p%d@example.org", i)))
		person.AppendChild(em)
		if rng.Intn(2) == 0 {
			prof := NewElement("profile")
			in := NewElement("interest")
			in.SetAttr("category", fmt.Sprintf("cat%d", rng.Intn(8)))
			prof.AppendChild(in)
			person.AppendChild(prof)
		}
		people.AppendChild(person)
	}

	auctions := NewElement("open_auctions")
	site.AppendChild(auctions)
	for i := 0; i < 6*scale; i++ {
		au := NewElement("open_auction")
		au.SetAttr("id", fmt.Sprintf("auction%d", i))
		ib := NewElement("initial")
		ib.AppendChild(NewText(fmt.Sprintf("%d.00", 1+rng.Intn(200))))
		au.AppendChild(ib)
		for b := 0; b <= rng.Intn(4); b++ {
			bid := NewElement("bidder")
			inc := NewElement("increase")
			inc.AppendChild(NewText(fmt.Sprintf("%d.50", 1+rng.Intn(20))))
			bid.AppendChild(inc)
			au.AppendChild(bid)
		}
		ref := NewElement("itemref")
		ref.SetAttr("item", fmt.Sprintf("item%d", rng.Intn(itemID)))
		au.AppendChild(ref)
		auctions.AppendChild(au)
	}
	return doc
}

// Shakespeare returns a play-shaped document: acts containing scenes
// containing speeches of a few lines each — moderate depth, moderate
// fan-out, highly regular.
func Shakespeare(acts, scenesPerAct, speechesPerScene int) *Node {
	doc := NewDocument()
	play := NewElement("PLAY")
	doc.AppendChild(play)
	title := NewElement("TITLE")
	title.AppendChild(NewText("The Tragedy of Synthetic Data"))
	play.AppendChild(title)
	for a := 1; a <= acts; a++ {
		act := NewElement("ACT")
		at := NewElement("TITLE")
		at.AppendChild(NewText(fmt.Sprintf("ACT %d", a)))
		act.AppendChild(at)
		for s := 1; s <= scenesPerAct; s++ {
			scene := NewElement("SCENE")
			st := NewElement("TITLE")
			st.AppendChild(NewText(fmt.Sprintf("SCENE %d", s)))
			scene.AppendChild(st)
			for sp := 1; sp <= speechesPerScene; sp++ {
				speech := NewElement("SPEECH")
				speaker := NewElement("SPEAKER")
				speaker.AppendChild(NewText(fmt.Sprintf("PLAYER%d", (sp%5)+1)))
				speech.AppendChild(speaker)
				for l := 0; l < 3; l++ {
					line := NewElement("LINE")
					line.AppendChild(NewText(fmt.Sprintf("line %d of speech %d", l+1, sp)))
					speech.AppendChild(line)
				}
				scene.AppendChild(speech)
			}
			act.AppendChild(scene)
		}
		play.AppendChild(act)
	}
	return doc
}

// PaperFigure1 builds the tree of Fig. 1(a) of the paper, whose real nodes
// carry the original-UID values 1, 2, 3, 8, 9, 23, 26, 27 under a k = 3
// enumeration. The published renumbering after inserting between nodes 2
// and 3 (3→4, 8→11, 9→12, 23→32, 26→35, 27→36) pins down the shape: with
// k = 3 the children of node i occupy (i−1)·3+2 .. 3·i+1, so 8 and 9 are
// the first two children of 3, 23 is the first child of 8, and 26, 27 are
// the first two children of 9. The function returns the document and the
// real nodes keyed by their original-UID value from the figure.
func PaperFigure1() (*Node, map[int64]*Node) {
	doc := NewDocument()
	mk := func(name string) *Node { return NewElement(name) }
	n1 := mk("n1")
	doc.AppendChild(n1)
	n2, n3 := mk("n2"), mk("n3")
	n1.AppendChild(n2)
	n1.AppendChild(n3)
	n8, n9 := mk("n8"), mk("n9")
	n3.AppendChild(n8)
	n3.AppendChild(n9)
	n23 := mk("n23")
	n8.AppendChild(n23)
	n26, n27 := mk("n26"), mk("n27")
	// With k = 3 the children of node 9 occupy 26..28; the figure shows the
	// first two of them.
	n9.AppendChild(n26)
	n9.AppendChild(n27)
	labels := map[int64]*Node{
		1: n1, 2: n2, 3: n3, 8: n8, 9: n9, 23: n23, 26: n26, 27: n27,
	}
	return doc, labels
}

// PaperExampleTree reconstructs a tree consistent with the 2-level ruid
// example of the paper (Fig. 4, Fig. 5 and Example 2). The scraped paper
// text loses the figure itself, but Example 2 fixes the structure: the
// frame fan-out κ is 4, there are six UID-local areas, the area with global
// index 2 has local fan-out 2 and contains a node with local index 7 whose
// parent has local index 3; the area with global index 3 is rooted at the
// node with local index 3 of the root area and has local fan-out 3; and the
// area with global index 10 is rooted at the node with local index 9 of
// area 3. The returned map names each node:
//
//	r                      area 1 root, ruid (1,1,true)
//	├─ a                   area 2 root, (2,2,true)
//	│  ├─ b                (2,2,false)
//	│  └─ c                (2,3,false)
//	│     ├─ d             (2,6,false)
//	│     └─ e             (2,7,false)   — Example 2, case 1
//	├─ p                   area 3 root, (3,3,true)
//	│  ├─ q                (3,2,false)
//	│  ├─ s                (3,3,false)   — Example 2, case 3
//	│  │  ├─ u             (3,8,false)
//	│  │  └─ v             area 10 root, (10,9,true) — Example 2, case 2
//	│  │     ├─ w          (10,2,false)
//	│  │     └─ x          (10,3,false)
//	│  └─ t                (3,4,false)
//	├─ g                   area 4 root, (4,4,true)
//	│  ├─ h                (4,2,false)
//	│  └─ i                (4,3,false)
//	└─ j                   area 5 root, (5,5,true)
//	   └─ m                (5,2,false)
//
// The second return value maps the names above to nodes; the third lists
// the names of the area roots in document order (r, a, p, v, g, j).
func PaperExampleTree() (*Node, map[string]*Node, []string) {
	doc := NewDocument()
	nodes := map[string]*Node{}
	mk := func(name string, parent *Node) *Node {
		n := NewElement(name)
		parent.AppendChild(n)
		nodes[name] = n
		return n
	}
	r := NewElement("r")
	doc.AppendChild(r)
	nodes["r"] = r
	a := mk("a", r)
	mk("b", a)
	c := mk("c", a)
	mk("d", c)
	mk("e", c)
	p := mk("p", r)
	mk("q", p)
	s := mk("s", p)
	mk("u", s)
	v := mk("v", s)
	mk("w", v)
	mk("x", v)
	mk("t", p)
	g := mk("g", r)
	mk("h", g)
	mk("i", g)
	j := mk("j", r)
	mk("m", j)
	return doc, nodes, []string{"r", "a", "p", "v", "g", "j"}
}
