package scheme

import "testing"

func TestUpdateStatsAdd(t *testing.T) {
	var s UpdateStats
	s.Add(UpdateStats{Relabeled: 3, AreaRebuilds: 1})
	s.Add(UpdateStats{Relabeled: 2, FullRebuild: true})
	if s.Relabeled != 5 || !s.FullRebuild || s.AreaRebuilds != 1 {
		t.Fatalf("accumulated stats = %+v", s)
	}
}
