package query_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/exec"
	"repro/internal/xmltree"
)

// TestParallelDeterminism pins the tentpole guarantee of the parallel
// execution layer: for every conformance query, parallel and serial
// execution return identical result sequences — same nodes, same order —
// whatever GOMAXPROCS and worker count are in effect. The CI race job runs
// this with GOMAXPROCS=1 as well; the loop below additionally forces 1, 2
// and 8 scheduler threads in-process.
func TestParallelDeterminism(t *testing.T) {
	docs := map[string]*xmltree.Node{
		"xmark":     xmltree.XMark(2, 9),
		"recursive": xmltree.Recursive(2, 7),
		"dblp":      xmltree.DBLP(300, 4),
	}
	queries := []string{
		// Join-compilable chains.
		"/site//item/name", "//section//title", "/dblp/article/author",
		"//regions//item//text", "/book//para",
		// Twig-compilable branching patterns.
		"//item[name]//text", "//person[profile]/name",
		"//open_auction[bidder][itemref]/initial",
		// Navigation fallbacks (executor-independent, kept as control).
		"//item[1]", "//title | //name", "//section/..",
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for dn, doc := range docs {
		p := newPlanner(t, doc)
		// Serial reference sequences, computed before touching GOMAXPROCS.
		p.SetExecutor(exec.New(exec.Config{Mode: exec.Serial}))
		type ref struct{ nodes []*xmltree.Node }
		want := make(map[string]ref, len(queries))
		for _, q := range queries {
			nodes, _, err := p.Run(q)
			if err != nil {
				t.Fatalf("%s: serial Run(%q): %v", dn, q, err)
			}
			want[q] = ref{nodes}
		}
		for _, procs := range []int{1, 2, 8} {
			runtime.GOMAXPROCS(procs)
			for _, workers := range []int{1, 2, 8} {
				p.SetExecutor(exec.New(exec.Config{Mode: exec.Forced, Workers: workers}))
				for _, q := range queries {
					t.Run(fmt.Sprintf("%s/procs=%d/p=%d/%s", dn, procs, workers, q), func(t *testing.T) {
						got, plan, err := p.Run(q)
						if err != nil {
							t.Fatalf("parallel Run: %v", err)
						}
						w := want[q].nodes
						if len(got) != len(w) {
							t.Fatalf("[%s] %d nodes, serial %d", plan.Kind, len(got), len(w))
						}
						for i := range got {
							if got[i] != w[i] {
								t.Fatalf("[%s] node %d differs from serial", plan.Kind, i)
							}
						}
					})
				}
			}
		}
	}
}
