// Package core implements the paper's primary contribution: the multilevel
// recursive UID (ruid) numbering scheme for XML data.
//
// A 2-level ruid (Definition 3) manages identifiers at two levels: the tree
// is partitioned into UID-local areas (Definition 2) whose roots form the
// frame (Definition 1); the frame is enumerated with a κ-ary original UID
// (the global indices) and each area with its own kᵢ-ary original UID (the
// local indices). A node's full identifier is the triple
//
//	(global index, local index, root indicator)
//
// where a non-root node carries the index of its area and its index inside
// the area, while an area root carries the index of its own area and its
// index as a leaf of the *upper* area. The root of the document is
// (1, 1, true).
//
// Together with the frame fan-out κ, the small table K — one row
// (global index, local index of the area root in the upper area, local
// fan-out) per area — suffices to compute the parent of any identifier
// entirely in main memory (Lemma 1, the rparent() algorithm of Fig. 6),
// to decide ancestor/descendant and preceding/following order
// (Lemmas 2 and 3), and to generate every positional XPath axis (§3.5).
package core

import (
	"encoding/binary"
	"fmt"
)

// ID is a 2-level ruid (g, l, r) per Definition 3 of the paper. The zero
// value is not a valid identifier; the document root is (1, 1, true).
type ID struct {
	Global int64 // index of the UID-local area (the node's own area if Root)
	Local  int64 // index inside the area (inside the upper area if Root)
	Root   bool  // whether the node is the root of a UID-local area
}

// RootID is the identifier of the document root (Definition 3).
var RootID = ID{Global: 1, Local: 1, Root: true}

// String renders the identifier the way the paper writes it,
// e.g. "(10, 9, true)".
func (id ID) String() string {
	return fmt.Sprintf("(%d, %d, %v)", id.Global, id.Local, id.Root)
}

// KeyBytes is the length of the Key encoding.
const KeyBytes = 17

// Key returns a 17-byte encoding — 8-byte big-endian global index, 8-byte
// big-endian local index, root flag — whose bytes.Compare order sorts
// "first by the global index, and then by local index" exactly as the paper
// prescribes for RDBMS storage (§2.1).
func (id ID) Key() []byte {
	var b [KeyBytes]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(id.Global))
	binary.BigEndian.PutUint64(b[8:16], uint64(id.Local))
	if id.Root {
		b[16] = 1
	}
	return b[:]
}

// DecodeKey parses a Key back into an ID. It returns false if the buffer is
// not a valid encoding.
func DecodeKey(b []byte) (ID, bool) {
	if len(b) != KeyBytes || b[16] > 1 {
		return ID{}, false
	}
	return ID{
		Global: int64(binary.BigEndian.Uint64(b[0:8])),
		Local:  int64(binary.BigEndian.Uint64(b[8:16])),
		Root:   b[16] == 1,
	}, true
}

// KRow is one row of the global parameter table K (Fig. 5): it describes
// one UID-local area.
type KRow struct {
	Global    int64 // global index of the area
	RootLocal int64 // local index of the area's root inside the upper area
	Fanout    int64 // maximal fan-out kᵢ used to enumerate the area
}

// String renders the row like the columns of Fig. 5.
func (r KRow) String() string {
	return fmt.Sprintf("%d\t%d\t%d", r.Global, r.RootLocal, r.Fanout)
}
