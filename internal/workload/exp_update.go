package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/prepost"
	"repro/internal/scheme"
	"repro/internal/xmltree"
)

// E6UpdateScope regenerates the §3.2 robustness comparison: the number of
// pre-existing identifiers that change per insertion, swept over insertion
// depth, for the original UID and for the 2-level ruid. The paper's claim:
// "the scope of identifier update due to a node insertion is reduced by a
// magnitude of two."
func E6UpdateScope() *Table {
	t := &Table{
		ID:    "E6",
		Title: "Relabeled identifiers per insertion, by insertion depth",
		Note:  "§3.2: ruid confines the update to one UID-local area",
		Header: []string{
			"document", "insert depth", "uid relabeled", "uid rebuilds",
			"ruid relabeled", "ruid area rebuilds",
		},
	}
	for _, d := range []string{"balanced-3x6", "xmark-4", "recursive-2x10"} {
		var mk func() *xmltree.Node
		for _, s := range Suite() {
			if s.Name == d {
				mk = s.Make
			}
		}
		maxDepth := xmltree.MaxDepth(mk().DocumentElement())
		for depth := 0; depth < maxDepth; depth += depthStep(maxDepth) {
			uidRel, uidReb := measureInsertions(mk(), depth, 8, func(doc *xmltree.Node) scheme.Updatable {
				return BuildUID(doc)
			})
			ruidRel, ruidReb := measureInsertions(mk(), depth, 8, func(doc *xmltree.Node) scheme.Updatable {
				return BuildRUID(doc)
			})
			t.AddRow(d, depth, fmt.Sprintf("%.1f", uidRel), uidReb,
				fmt.Sprintf("%.1f", ruidRel), ruidReb)
		}
	}
	return t
}

func depthStep(max int) int {
	if max <= 6 {
		return 1
	}
	return max / 6
}

// measureInsertions performs trials first-position insertions at the given
// depth on fresh copies of the document and returns the mean relabel count
// and the total number of rebuilds (full for UID, per-area for ruid).
func measureInsertions(doc *xmltree.Node, depth, trials int, build func(*xmltree.Node) scheme.Updatable) (float64, int) {
	rng := rand.New(rand.NewSource(int64(depth)*31 + 7))
	totalRel, rebuilds := 0, 0
	n := build(doc)
	root := doc.DocumentElement()
	var candidates []*xmltree.Node
	root.Walk(func(x *xmltree.Node) bool {
		if x.Depth()-root.Depth() == depth && x.Kind == xmltree.Element {
			candidates = append(candidates, x)
		}
		return true
	})
	if len(candidates) == 0 {
		return 0, 0
	}
	for i := 0; i < trials; i++ {
		target := candidates[rng.Intn(len(candidates))]
		st, err := n.InsertChild(target, 0, xmltree.NewElement("ins"))
		if err != nil {
			panic(err)
		}
		totalRel += st.Relabeled
		if st.FullRebuild {
			rebuilds++
		}
		rebuilds += st.AreaRebuilds
	}
	return float64(totalRel) / float64(trials), rebuilds
}

// E6Deletion is the deletion counterpart of E6: cascading deletions at
// several depths.
func E6Deletion() *Table {
	t := &Table{
		ID:     "E6b",
		Title:  "Relabeled identifiers per cascading deletion, by depth",
		Note:   "§3.2: node deletion is cascading; ruid confines the shift to one area",
		Header: []string{"document", "delete depth", "uid relabeled", "ruid relabeled"},
	}
	for _, d := range []string{"balanced-3x6", "xmark-4"} {
		var mk func() *xmltree.Node
		for _, s := range Suite() {
			if s.Name == d {
				mk = s.Make
			}
		}
		maxDepth := xmltree.MaxDepth(mk().DocumentElement())
		for depth := 0; depth < maxDepth-1; depth += depthStep(maxDepth) {
			u := measureDeletions(mk(), depth, 8, func(doc *xmltree.Node) scheme.Updatable { return BuildUID(doc) })
			r := measureDeletions(mk(), depth, 8, func(doc *xmltree.Node) scheme.Updatable { return BuildRUID(doc) })
			t.AddRow(d, depth, fmt.Sprintf("%.1f", u), fmt.Sprintf("%.1f", r))
		}
	}
	return t
}

func measureDeletions(doc *xmltree.Node, depth, trials int, build func(*xmltree.Node) scheme.Updatable) float64 {
	rng := rand.New(rand.NewSource(int64(depth)*17 + 3))
	total := 0
	n := build(doc)
	root := doc.DocumentElement()
	done := 0
	for done < trials {
		var candidates []*xmltree.Node
		root.Walk(func(x *xmltree.Node) bool {
			if x.Depth()-root.Depth() == depth && len(x.Children) > 1 {
				candidates = append(candidates, x)
			}
			return true
		})
		if len(candidates) == 0 {
			break
		}
		target := candidates[rng.Intn(len(candidates))]
		st, err := n.DeleteChild(target, 0)
		if err != nil {
			panic(err)
		}
		total += st.Relabeled
		done++
	}
	if done == 0 {
		return 0
	}
	return float64(total) / float64(done)
}

// E6WorstCase regenerates the fan-out overflow contrast: growing one node's
// fan-out past its budget forces a whole-document renumbering with the
// original UID but only a one-area re-enumeration with ruid.
func E6WorstCase() *Table {
	t := &Table{
		ID:    "E6c",
		Title: "Fan-out overflow: whole-document vs one-area renumbering",
		Note:  "§1 and §3.2: \"the modification of k results in an overhaul of the identifier system\"",
		Header: []string{
			"document", "nodes", "uid relabeled on overflow", "ruid relabeled on overflow",
		},
	}
	for _, d := range []string{"balanced-3x6", "dblp-1k", "shakespeare"} {
		var mk func() *xmltree.Node
		for _, s := range Suite() {
			if s.Name == d {
				mk = s.Make
			}
		}
		// Force an overflow: insert children at the widest node until its
		// fan-out exceeds the initial k.
		overflowAt := func(doc *xmltree.Node) (*xmltree.Node, int) {
			root := doc.DocumentElement()
			widest := root
			root.Walk(func(x *xmltree.Node) bool {
				if len(x.Children) > len(widest.Children) {
					widest = x
				}
				return true
			})
			return widest, len(widest.Children)
		}

		docU := mk()
		nU := BuildUID(docU)
		widest, _ := overflowAt(docU)
		stU, err := nU.InsertChild(widest, 0, xmltree.NewElement("over"))
		if err != nil {
			panic(err)
		}

		docR := mk()
		nR, err := core.Build(docR, core.Options{Partition: DefaultPartition})
		if err != nil {
			panic(err)
		}
		widestR, _ := overflowAt(docR)
		// Fill the widest node's area fan-out first so the next insert
		// overflows it; one insertion at the widest node suffices when the
		// node already carries the area's maximal fan-out.
		stR, err := nR.InsertChild(widestR, 0, xmltree.NewElement("over"))
		if err != nil {
			panic(err)
		}
		nodes := xmltree.CountNodes(mk().DocumentElement())
		t.AddRow(d, nodes, stU.Relabeled, stR.Relabeled)
	}
	return t
}

// E6Churn compares cumulative relabeling under sustained insertion at one
// hot spot across three scheme families: the original UID (relabels right
// siblings every time), the 2-level ruid (small, area-confined relabels),
// and the Li–Moon extended preorder with slack (free until gaps exhaust,
// then a whole-document relabel). This extends §3.2 with the interval-
// scheme behaviour the related work (§6) alludes to.
func E6Churn() *Table {
	t := &Table{
		ID:    "E6d",
		Title: "Cumulative relabels over 50 insertions at one hot spot",
		Note:  "extension of §3.2: UID vs ruid vs Li–Moon (slack 4)",
		Header: []string{
			"document", "uid total", "ruid total", "limoon total", "limoon rebuilds",
		},
	}
	for _, d := range []string{"balanced-3x6", "shakespeare"} {
		var mk func() *xmltree.Node
		for _, s := range Suite() {
			if s.Name == d {
				mk = s.Make
			}
		}
		hot := func(doc *xmltree.Node) *xmltree.Node {
			// A fixed interior hot spot: the first element two levels below
			// the root (falling back to the root if the document is flat).
			root := doc.DocumentElement()
			var target *xmltree.Node
			root.Walk(func(x *xmltree.Node) bool {
				if target != nil {
					return false
				}
				if x.Kind == xmltree.Element && x.Depth()-root.Depth() == 2 {
					target = x
					return false
				}
				return true
			})
			if target == nil {
				target = root
			}
			return target
		}
		churn := func(n scheme.Updatable, doc *xmltree.Node) (int, int) {
			target := hot(doc)
			total, rebuilds := 0, 0
			for i := 0; i < 50; i++ {
				st, err := n.InsertChild(target, 0, xmltree.NewElement("hot"))
				if err != nil {
					panic(err)
				}
				total += st.Relabeled
				if st.FullRebuild {
					rebuilds++
				}
			}
			return total, rebuilds
		}
		docU := mk()
		uTotal, _ := churn(BuildUID(docU), docU)
		docR := mk()
		rTotal, _ := churn(BuildRUID(docR), docR)
		docL := mk()
		lm, err := prepost.BuildLiMoon(docL, 4)
		if err != nil {
			panic(err)
		}
		lTotal, lRebuilds := churn(lm, docL)
		t.AddRow(d, uTotal, rTotal, lTotal, lRebuilds)
	}
	return t
}
