package core

import "fmt"

// The epoch-mode representation of the table K. A flat sorted slice would
// make every publication copy O(areas) pointers — on large documents that
// copy (and the garbage-collector work of scanning it) dominates an
// area-confined publish. Chunking the sorted rows turns the per-publish
// cost into one directory copy (≈ areas / areaChunkSize entries) plus one
// chunk copy per touched area: untouched chunks are shared with the
// previous epoch, in the same path-copying style as the tree and the slot
// maps. Chunks are immutable once published.

// areaChunkSize bounds both the directory length and the size of the chunk
// a publication has to copy when one of its rows changes.
const areaChunkSize = 256

// areaIndex is an immutable chunked view of the table K sorted by global
// index: the concatenation of chunks is the full sorted row list, and
// firstG[i] caches chunks[i][0].global for the directory search.
type areaIndex struct {
	chunks [][]*area
	firstG []int64
	rows   int
}

// newAreaIndex chunks a slice of K rows already sorted by global index.
func newAreaIndex(sorted []*area) *areaIndex {
	ix := &areaIndex{rows: len(sorted)}
	for len(sorted) > 0 {
		n := areaChunkSize
		if n > len(sorted) {
			n = len(sorted)
		}
		ix.chunks = append(ix.chunks, sorted[:n:n])
		ix.firstG = append(ix.firstG, sorted[0].global)
		sorted = sorted[n:]
	}
	return ix
}

// locate returns the position of the chunk that would hold global index g
// (the last chunk whose first row is ≤ g), or -1 when g sorts before every
// row. Hand-rolled binary search: this sits on the krow hot path, where a
// sort.Search closure would allocate.
func (ix *areaIndex) locate(g int64) int {
	lo, hi := 0, len(ix.firstG)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.firstG[mid] <= g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// find returns the K row with global index g.
func (ix *areaIndex) find(g int64) (*area, bool) {
	ci := ix.locate(g)
	if ci < 0 {
		return nil, false
	}
	chunk := ix.chunks[ci]
	lo, hi := 0, len(chunk)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if chunk[mid].global < g {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(chunk) && chunk[lo].global == g {
		return chunk[lo], true
	}
	return nil, false
}

// forEach visits every row in ascending global order.
func (ix *areaIndex) forEach(fn func(*area)) {
	for _, chunk := range ix.chunks {
		for _, a := range chunk {
			fn(a)
		}
	}
}

// withPatches derives the next epoch's index: rows named in patched are
// substituted, rows named in deleted are dropped, and every chunk that
// holds neither is shared with the receiver. Patching a row unknown to the
// receiver is an error (updates never create areas outside a full
// rebuild); deleting an unknown row is too.
func (ix *areaIndex) withPatches(patched map[int64]*area, deleted []int64) (*areaIndex, error) {
	out := &areaIndex{
		chunks: append([][]*area(nil), ix.chunks...),
		firstG: append([]int64(nil), ix.firstG...),
		rows:   ix.rows,
	}
	owned := make(map[int]bool, len(patched)+len(deleted))
	own := func(ci int) []*area {
		if !owned[ci] {
			out.chunks[ci] = append([]*area(nil), out.chunks[ci]...)
			owned[ci] = true
		}
		return out.chunks[ci]
	}
	pos := func(g int64) (int, int, bool) {
		ci := out.locate(g)
		if ci < 0 {
			return 0, 0, false
		}
		chunk := out.chunks[ci]
		lo, hi := 0, len(chunk)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if chunk[mid].global < g {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(chunk) && chunk[lo].global == g {
			return ci, lo, true
		}
		return 0, 0, false
	}
	for g, na := range patched {
		ci, i, ok := pos(g)
		if !ok {
			return nil, fmt.Errorf("core: delta patched area %d unknown to the previous epoch", g)
		}
		own(ci)[i] = na
	}
	for _, g := range deleted {
		ci, i, ok := pos(g)
		if !ok {
			return nil, fmt.Errorf("core: delta deleted area %d unknown to the previous epoch", g)
		}
		chunk := own(ci)
		chunk = append(chunk[:i], chunk[i+1:]...)
		out.rows--
		if len(chunk) == 0 {
			out.chunks = append(out.chunks[:ci], out.chunks[ci+1:]...)
			out.firstG = append(out.firstG[:ci], out.firstG[ci+1:]...)
			continue
		}
		out.chunks[ci] = chunk
		out.firstG[ci] = chunk[0].global
	}
	return out, nil
}
