package storage

import (
	"bytes"
	"testing"
)

// blobPattern is an arbitrary byte sequence long enough to span several
// pages, with position-dependent content so a misplaced page read is
// detected immediately.
func blobPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i/PageSize)
	}
	return b
}

func TestBlockStoreRoundTrip(t *testing.T) {
	s := NewBlockStore(4)
	big := blobPattern(3*PageSize + 123)
	small := []byte("tiny")
	if err := s.PutBlob("big", big); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob("small", small); err != nil {
		t.Fatal(err)
	}
	if err := s.PutBlob("big", big); err == nil {
		t.Fatalf("duplicate PutBlob accepted (blobs are immutable)")
	}
	if !s.HasBlob("big") || s.HasBlob("nope") {
		t.Fatalf("HasBlob wrong")
	}
	if sz, ok := s.BlobSize("big"); !ok || sz != len(big) {
		t.Fatalf("BlobSize = %d,%v", sz, ok)
	}
	if names := s.BlobNames(); len(names) != 2 || names[0] != "big" || names[1] != "small" {
		t.Fatalf("BlobNames = %v", names)
	}

	// Ranges within a page, straddling page boundaries, and the full blob.
	for _, r := range [][2]int{
		{0, 10}, {100, 100}, {PageSize - 5, PageSize + 5},
		{2*PageSize - 1, 2*PageSize + 1}, {0, len(big)}, {len(big) - 3, len(big)},
	} {
		got, err := s.ReadRange("big", r[0], r[1], nil)
		if err != nil {
			t.Fatalf("ReadRange%v: %v", r, err)
		}
		if !bytes.Equal(got, big[r[0]:r[1]]) {
			t.Fatalf("ReadRange%v returned wrong bytes", r)
		}
	}
	// Append semantics: the range lands after existing dst content.
	got, err := s.ReadRange("small", 0, 4, []byte("pre:"))
	if err != nil || string(got) != "pre:tiny" {
		t.Fatalf("ReadRange append = %q, %v", got, err)
	}

	if _, err := s.ReadRange("nope", 0, 1, nil); err == nil {
		t.Fatalf("unknown blob accepted")
	}
	for _, r := range [][2]int{{-1, 2}, {5, 4}, {0, len(big) + 1}} {
		if _, err := s.ReadRange("big", r[0], r[1], nil); err == nil {
			t.Fatalf("out-of-range %v accepted", r)
		}
	}

	// A blob survives a cold restart of the pool, and the fault count equals
	// the pages the range spans.
	s.Pager().Flush()
	s.DropCache()
	s.ResetStats()
	if _, err := s.ReadRange("big", 0, len(big), nil); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Reads != 4 {
		t.Fatalf("cold full read faulted %d pages, want 4", st.Reads)
	}
	s.ResetStats()
	if _, err := s.ReadRange("big", 3*PageSize, len(big), nil); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Reads != 0 || st.CacheHits != 1 {
		t.Fatalf("warm tail read: %v, want one hit and no reads", st)
	}
}

// TestDocStoreSharedPool: blobs and node-table pages draw on one pager, so
// a single pool bound and one I/O ledger govern both.
func TestDocStoreSharedPool(t *testing.T) {
	ds := NewDocStore(8)
	if ds.Blocks.Pager() != ds.Pager() || ds.Nodes.Pager() != ds.Pager() {
		t.Fatalf("DocStore parts do not share the pager")
	}
	if err := ds.Blocks.PutBlob("b", blobPattern(2*PageSize)); err != nil {
		t.Fatal(err)
	}
	before := ds.Pages()
	if before < 2 {
		t.Fatalf("blob pages not visible through DocStore: %d", before)
	}
	ds.Flush()
	ds.DropCache()
	ds.ResetStats()
	if _, err := ds.Blocks.ReadRange("b", 0, PageSize, nil); err != nil {
		t.Fatal(err)
	}
	if st := ds.Stats(); st.Reads != 1 {
		t.Fatalf("shared ledger missed the fault: %v", st)
	}
}
